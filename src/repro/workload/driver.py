"""Service-style workload driver: a stream of concurrent collective requests.

The paper evaluates one collective transfer at a time; its claim — IOPs that
schedule the disk from global knowledge beat caching at the compute nodes —
matters most when *many* collectives contend for the same disks, as in
server-attached parallel file systems.  This driver models that scenario:

* several striped files are open concurrently (independent layouts);
* requests arrive via a closed loop or a Poisson open loop
  (:mod:`repro.workload.arrival`);
* a job scheduler admits at most ``concurrency`` collectives at a time;
* each admitted request runs as a re-entrant
  :class:`~repro.core.base.CollectiveSession` on a single shared
  file-system implementation (DDIO, traditional caching or two-phase).

The result records per-request response times and byte conservation, plus
whole-run throughput — the inputs for the ``service`` experiment family.

Invariants the driver guarantees (tests pin each one):

* **Plan determinism.**  The shape of request *i* — target file, pattern,
  record size, read/write mode, interarrival gap, think time — is a pure
  function of ``(trial_seed, i)`` via
  :func:`~repro.workload.arrival.request_rng`, and the size of file *j* is a
  pure function of ``(trial_seed, j)`` via
  :func:`~repro.workload.sizes.file_size_rng`.  Nothing depends on arrival
  order, admission order, completion order, the client population, or which
  process pool ran the trial; serial and parallel sweeps are therefore
  bit-identical.
* **Admission bound.**  At most ``concurrency`` sessions are ever in
  flight; ``max_in_flight`` reports the high-water mark actually reached.
* **Byte conservation.**  Every requested byte is accounted for: on a
  healthy machine each collective moves exactly the bytes its pattern
  requests, and under fault injection ``bytes_moved + bytes_failed ==
  bytes_requested`` per record (failed read blocks are explicitly counted,
  never silently dropped), whatever the interleaving with its neighbours.
* **Makespan convention.**  Throughput divides total bytes by (last
  completion − *first arrival*): an open-loop run's idle lead-in is not
  service time and must not deflate throughput.
* **Record slots.**  ``requests[i]`` always describes planned request *i*
  (records are slotted by index, not completion order), so percentile and
  per-request analyses line up across methods and schedulers.

Per-request ``counters`` inside each session's ``TransferResult`` are
per-session throughout (disk service time, bus share — see
``CollectiveFileSystem._snapshot_counters``), so concurrent requests do not
bleed into each other's metrics.
"""

import math
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core import make_filesystem
from repro.disk.faults import FaultPolicy
from repro.fs import FileSystem
from repro.machine import Machine, MachineConfig
from repro.patterns import make_pattern
from repro.sim.events import AllOf
from repro.sim.resources import Resource
from repro.workload.admission import (
    ADMITTED,
    DROPPED,
    AdaptiveConcurrencyController,
    AdmissionQueue,
    AdmissionTicket,
    ControllerConfig,
    FIFOPolicy,
    make_admission_policy,
)
from repro.workload.aggregate import QuantileSketch
from repro.workload.arrival import make_arrival, request_rng, session_qos
from repro.workload.checkpoint import (
    CheckpointError,
    IndexRanges,
    RunCheckpoint,
    run_fingerprint,
)
from repro.workload.sizes import SIZE_DISTRIBUTIONS, sample_file_sizes

MEGABYTE = float(2 ** 20)

#: Default cap on a heavy-tailed file-size draw, as a multiple of the mean.
#: Bounds the simulation cost of one trial; see :mod:`repro.workload.sizes`.
DEFAULT_SIZE_CAP_FACTOR = 16


@dataclass(frozen=True)
class ServiceWorkload:
    """Description of one service-style request stream (machine shape excluded)."""

    #: total collective requests in the stream
    n_requests: int = 16
    #: "closed" (fixed client population) or "poisson" (open loop)
    arrival: str = "closed"
    #: offered load for poisson arrivals, requests/second
    arrival_rate: float = 50.0
    #: mean pause between a closed-loop client's completion and next request
    think_time: float = 0.0
    #: draw closed-loop think times from an exponential distribution
    exponential_think: bool = False
    #: K: collectives admitted concurrently (also the closed-loop population)
    concurrency: int = 2
    #: number of concurrently-open striped files requests are spread over
    n_files: int = 2
    #: size of each file, bytes
    file_size: int = 256 * 1024
    #: physical layout of every file ("contiguous" or "random")
    layout: str = "contiguous"
    #: how requests map to files: "random" (uniform choice; concurrent
    #: collectives may overlap on a file, which favours caching reuse) or
    #: "round-robin" (request i targets file i mod n_files — the
    #: independent-jobs scenario with disjoint working sets)
    file_assignment: str = "random"
    #: probability that a request is a read (writes otherwise)
    read_fraction: float = 0.5
    #: distribution specs (pattern names minus the r/w prefix) to draw from
    pattern_specs: tuple = ("b",)
    #: record size of every request's pattern (when ``record_sizes`` is empty)
    record_size: int = 8192
    #: record-size *mix*: each request draws its record size uniformly from
    #: this tuple (e.g. ``(8, 8192)`` mixes the paper's worst case in).
    #: Empty means every request uses ``record_size``.
    record_sizes: tuple = ()
    #: per-file size distribution: "fixed" (every file is ``file_size``
    #: bytes), "pareto" or "lognormal" (heavy-tailed, mean ``file_size``;
    #: see :mod:`repro.workload.sizes`)
    size_distribution: str = "fixed"
    #: Pareto tail index (must be > 1 for a finite mean); smaller is heavier
    size_alpha: float = 1.5
    #: lognormal shape parameter; larger is heavier
    size_sigma: float = 1.0
    #: cap on any single heavy-tailed size draw, bytes
    #: (0 means ``DEFAULT_SIZE_CAP_FACTOR * file_size``)
    max_file_size: int = 0
    #: static QoS classes sessions are stamped with (1: everyone equal; >1:
    #: class drawn uniformly per (seed, index) — see the priority admission
    #: policy in :mod:`repro.workload.admission`)
    priority_levels: int = 1
    #: mean deadline budget, seconds after arrival (0: no deadlines; >0:
    #: per-session slack drawn in [0.5, 1.5] x this — the EDF policy's input)
    deadline_slack: float = 0.0
    #: default trial seed (overridable per run)
    seed: int = 0

    def __post_init__(self):
        if self.n_requests < 1:
            raise ValueError(f"need at least one request, got {self.n_requests}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.n_files < 1:
            raise ValueError(f"need at least one file, got {self.n_files}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read fraction must be in [0, 1], got {self.read_fraction}")
        if not self.pattern_specs:
            raise ValueError("need at least one pattern spec")
        if self.file_assignment not in ("random", "round-robin"):
            raise ValueError(
                f"file assignment must be 'random' or 'round-robin', "
                f"got {self.file_assignment!r}")
        if self.priority_levels < 1:
            raise ValueError(
                f"need at least one priority level, got {self.priority_levels}")
        if self.deadline_slack < 0:
            raise ValueError(
                f"deadline slack must be >= 0, got {self.deadline_slack}")
        if any(size < 1 for size in self.effective_record_sizes):
            raise ValueError(
                f"record sizes must be positive, got {self.record_sizes}")
        if self.size_distribution not in SIZE_DISTRIBUTIONS:
            raise ValueError(
                f"unknown size distribution {self.size_distribution!r}; "
                f"choose one of {SIZE_DISTRIBUTIONS}")
        if self.size_distribution == "fixed" \
                and self.file_size % self.size_granularity:
            raise ValueError(
                f"file size {self.file_size} is not a multiple of the record "
                f"granularity {self.size_granularity} "
                f"(lcm of {self.effective_record_sizes})")

    @property
    def effective_record_sizes(self):
        """The record-size mix requests draw from (never empty)."""
        return tuple(self.record_sizes) if self.record_sizes \
            else (self.record_size,)

    @property
    def size_granularity(self):
        """Every file size is a multiple of this: lcm of the record mix."""
        return math.lcm(*self.effective_record_sizes)

    def sample_sizes(self, trial_seed):
        """Per-file sizes for one trial (deterministic per (seed, file))."""
        cap = self.max_file_size if self.max_file_size \
            else DEFAULT_SIZE_CAP_FACTOR * self.file_size
        return sample_file_sizes(
            self.size_distribution, self.file_size, self.n_files, trial_seed,
            alpha=self.size_alpha, sigma=self.size_sigma,
            granularity=self.size_granularity, max_size=cap)

    def make_arrival_process(self):
        return make_arrival(self.arrival, arrival_rate=self.arrival_rate,
                            think_time=self.think_time,
                            exponential_think=self.exponential_think)


def percentile(values, fraction):
    """Linear-interpolation percentile (``fraction`` in [0, 1]) of *values*."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not values:
        return 0.0
    return float(np.percentile(values, fraction * 100.0))


@dataclass
class ServiceResult:
    """Outcome of one service-driver run.

    Percentiles and fault totals are carried by *mergeable aggregates* —
    log-bucketed quantile sketches (:mod:`repro.workload.aggregate`) and
    scalar totals folded in as each session completes — so a result is O(1)
    in the request count.  ``requests`` additionally holds one plain
    dictionary per request (index, file, pattern, arrival / admitted /
    completed times, bytes requested and moved) when the driver runs with
    ``retain_requests=True``; streaming runs leave it empty.
    """

    method: str
    arrival: str
    n_requests: int
    concurrency: int
    n_cps: int
    n_iops: int
    n_disks: int
    seed: int
    start_time: float
    end_time: float
    total_bytes: int
    max_in_flight: int
    requests: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    #: size of each open file, bytes, in creation order (uniform unless the
    #: workload samples a heavy-tailed size distribution)
    file_sizes: list = field(default_factory=list)
    #: realised fault schedule: one :meth:`FaultPlan.describe` snapshot per
    #: faulted drive (empty on a healthy machine), so the result envelope
    #: pins exactly which faults a trial injected
    fault_plans: list = field(default_factory=list)
    #: serialised :class:`~repro.workload.aggregate.QuantileSketch` of
    #: arrival-to-completion response times (the percentile source)
    response_sketch: dict = field(default_factory=dict)
    #: serialised sketch of admission-to-completion service times
    service_sketch: dict = field(default_factory=dict)
    #: scalar fold totals: completed count, bytes requested/failed/lost,
    #: retries, degraded completions, drop/shed tallies, and the running
    #: conservation check
    aggregates: dict = field(default_factory=dict)
    #: the admission discipline that ordered the run (policy ``describe()``)
    admission: str = "fifo"
    #: final state of the adaptive-K controller (empty when none ran)
    controller: dict = field(default_factory=dict)
    #: per-priority-class response-time sketches, keyed by class as a string
    #: (empty unless the workload stamps more than one class)
    class_sketches: dict = field(default_factory=dict)

    # -- whole-run metrics -------------------------------------------------------
    @property
    def elapsed(self):
        """Makespan: simulated seconds from first arrival to last completion."""
        return self.end_time - self.start_time

    @property
    def throughput(self):
        """Bytes served per second over the makespan."""
        if self.elapsed <= 0:
            return 0.0
        return self.total_bytes / self.elapsed

    @property
    def throughput_mb(self):
        """Throughput in the paper's Mbytes/s."""
        return self.throughput / MEGABYTE

    # -- per-request metrics -----------------------------------------------------
    @property
    def response_times(self):
        """Arrival-to-completion time of every retained *completed* request,
        in request order (dropped/shed sessions never complete).  Empty for
        streaming runs — use the sketch instead."""
        return [record["completed_time"] - record["arrival_time"]
                for record in self.requests
                if record.get("admitted_time") is not None]

    @property
    def service_times(self):
        """Admission-to-completion time of every retained completed request,
        in request order.  Empty for streaming runs — use the sketch instead."""
        return [record["completed_time"] - record["admitted_time"]
                for record in self.requests
                if record.get("admitted_time") is not None]

    def _sketch(self, attribute):
        """Deserialise (and memoise) one of the two quantile sketches."""
        cache_name = f"_{attribute}_obj"
        sketch = getattr(self, cache_name, None)
        if sketch is None:
            data = getattr(self, attribute)
            sketch = QuantileSketch.from_dict(data) if data \
                else QuantileSketch()
            object.__setattr__(self, cache_name, sketch)
        return sketch

    def response_percentile(self, fraction):
        """Response-time percentile, e.g. ``response_percentile(0.99)``.

        Estimated from the mergeable quantile sketch — within the documented
        relative error bound (:func:`repro.workload.aggregate.
        relative_error_bound`) of the sorted-list answer, at O(1) memory in
        the request count.  Results built without a sketch (e.g. assembled by
        hand in tests) fall back to the exact sorted-list percentile of the
        retained records.
        """
        if self.response_sketch:
            return self._sketch("response_sketch").quantile(fraction)
        return percentile(self.response_times, fraction)

    def service_percentile(self, fraction):
        """Admission-to-completion time percentile, from the sketch."""
        if self.service_sketch:
            return self._sketch("service_sketch").quantile(fraction)
        return percentile(self.service_times, fraction)

    @property
    def mean_response_time(self):
        if self.response_sketch:
            return self._sketch("response_sketch").mean
        times = self.response_times
        return sum(times) / len(times) if times else 0.0

    # -- fault accounting --------------------------------------------------------
    def _aggregate(self, name, record_key):
        """A fold total, falling back to summing retained records for
        results assembled without aggregates (e.g. by hand in tests)."""
        if self.aggregates:
            return self.aggregates.get(name, 0)
        return sum(record.get(record_key, 0) for record in self.requests)

    @property
    def failed_bytes(self):
        """Read bytes requested but never delivered (given up under faults)."""
        return self._aggregate("bytes_failed", "bytes_failed")

    @property
    def lost_bytes(self):
        """Write bytes shipped over the wire but never made durable."""
        return self._aggregate("bytes_lost", "bytes_lost")

    @property
    def total_retries(self):
        """Disk requests re-submitted by the retry policy, whole run."""
        return self._aggregate("retries", "retries")

    @property
    def degraded_requests(self):
        """Number of requests that completed degraded (partial data)."""
        return self._aggregate("degraded", "degraded")

    # -- admission accounting ----------------------------------------------------
    @property
    def shed_bytes(self):
        """Bytes of sessions rejected at admission (deadline drops + load
        shedding) — requested work the server explicitly declined."""
        return self._aggregate("bytes_shed", "bytes_shed")

    @property
    def dropped_requests(self):
        """Sessions dropped by the admission policy (unmeetable deadlines)."""
        return self._aggregate("dropped", "dropped")

    @property
    def shed_requests(self):
        """Sessions shed by the controller's SLO load shedder."""
        return self._aggregate("shed", "shed")

    @property
    def goodput(self):
        """Useful bytes per second: delivered traffic minus write data the
        drive never made durable.  Failed read bytes never enter
        ``total_bytes``, so on a healthy machine goodput == throughput."""
        if self.elapsed <= 0:
            return 0.0
        return (self.total_bytes - self.lost_bytes) / self.elapsed

    @property
    def goodput_mb(self):
        """Goodput in the paper's Mbytes/s."""
        return self.goodput / MEGABYTE

    def conserves_bytes(self):
        """True when every requested byte is delivered or explicitly accounted.

        On a healthy FIFO machine this reduces to the original
        ``bytes_moved == bytes_requested`` invariant; under fault injection
        failed bytes join the left side, and under drop/shed admission the
        rejected sessions' bytes do too: ``bytes_moved + bytes_failed +
        bytes_shed == bytes_requested``.  The check is folded per session at
        its terminal event (so streaming runs keep it without retaining
        records); results assembled without aggregates fall back to checking
        the retained records.
        """
        if self.aggregates:
            totals_balance = (
                self.aggregates.get("bytes_moved", 0)
                + self.aggregates.get("bytes_failed", 0)
                + self.aggregates.get("bytes_shed", 0)
                == self.aggregates.get("bytes_requested", 0))
            return bool(self.aggregates.get("conserved", False)) \
                and totals_balance
        return all(record["bytes_moved"] + record.get("bytes_failed", 0)
                   + record.get("bytes_shed", 0)
                   == record["bytes_requested"]
                   for record in self.requests)

    def summary(self):
        return (f"{self.method:12s} {self.arrival:8s} K={self.concurrency} "
                f"{self.n_requests:3d} reqs {self.throughput_mb:6.2f} MB/s "
                f"p50={self.response_percentile(0.5) * 1e3:7.2f} ms "
                f"p99={self.response_percentile(0.99) * 1e3:7.2f} ms")


#: Handler-spawn window for streaming open-loop runs: how many arrived
#: requests may exist as live (pending-unadmitted) simulator processes at
#: once.  The window only has to exceed the number of admission slots that
#: can free at one simulated instant (at most ``concurrency``) for admission
#: instants to match the materialised reference exactly; it is generous
#: because handlers are small and the backlog itself stays implicit in the
#: arrival cursor.
STREAM_SPAWN_WINDOW = 64


class ServiceDriver:
    """Streams a :class:`ServiceWorkload` through one machine.

    ``implementation`` is a re-entrant :class:`CollectiveFileSystem` bound to
    the machine; ``files`` are the concurrently-open striped files requests
    are spread over.  The driver owns the admission scheduler: a counting
    semaphore of ``workload.concurrency`` slots, acquired before
    ``begin_transfer`` and released at completion.

    Measurement is *streaming*: each session's response/service time and
    byte/fault counters are folded into mergeable aggregates
    (:mod:`repro.workload.aggregate`) the moment it completes, so driver-side
    memory is O(1) in the request count.  With ``retain_requests=True`` (the
    default, for small runs and the differential reference) the driver
    additionally keeps the per-request record list and uses the exact
    handler-per-arrival open-loop generator; ``retain_requests=False`` keeps
    only the aggregates and bounds live open-loop handlers by a spawn window
    driven from the (deterministic) arrival cursor.

    ``checkpoint_every``/``checkpoint_path`` write a
    :class:`~repro.workload.checkpoint.RunCheckpoint` of the fold state every
    N completions; ``resume_from`` (a checkpoint object or path) restores one
    — the resumed replay skips re-folding already-accounted sessions and
    reproduces the uninterrupted run's envelope exactly (see
    :mod:`repro.workload.checkpoint` for why that is sound).
    """

    def __init__(self, machine, implementation, files, workload,
                 retain_requests=True, checkpoint_every=0,
                 checkpoint_path=None, resume_from=None,
                 admission_policy="fifo", controller=None,
                 legacy_admission=False):
        self.machine = machine
        self.env = machine.env
        self.implementation = implementation
        self.files = list(files)
        self.workload = workload
        self.retain_requests = retain_requests
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        if isinstance(resume_from, (str, os.PathLike)):
            resume_from = RunCheckpoint.load(resume_from)
        self._resume = resume_from
        self.admission_policy = make_admission_policy(admission_policy)
        self._legacy = legacy_admission
        if isinstance(controller, dict):
            controller = ControllerConfig(**controller)
        self._controller_config = controller
        self._controller = None
        if legacy_admission:
            # The pre-admission-layer reference path (a plain FIFO counting
            # Resource), kept so the differential tests can pin the FIFO
            # policy bit-identical against the code it replaced.
            if controller is not None \
                    or not isinstance(self.admission_policy, FIFOPolicy):
                raise ValueError(
                    "the legacy admission path is FIFO-only, no controller")
            self.admission = Resource(machine.env,
                                      capacity=workload.concurrency,
                                      name="service-admission")
        else:
            self.admission = AdmissionQueue(machine.env,
                                            capacity=workload.concurrency,
                                            policy=self.admission_policy,
                                            name="service-admission")
            if controller is not None:
                max_k = controller.max_k if controller.max_k > 0 \
                    else 4 * workload.concurrency
                self._controller = AdaptiveConcurrencyController(
                    controller, self.admission, max_k=max_k)
        self._in_flight = 0
        self.max_in_flight = 0
        self._records = []
        self._reset_fold_state()

    def _reset_fold_state(self):
        self._response_sketch = QuantileSketch()
        self._service_sketch = QuantileSketch()
        self._class_sketches = {} if self.workload.priority_levels > 1 \
            else None
        self._folded = IndexRanges()
        self._totals = {
            "completed": 0,
            "bytes_requested": 0,
            "bytes_moved": 0,
            "bytes_failed": 0,
            "bytes_lost": 0,
            "bytes_shed": 0,
            "retries": 0,
            "degraded": 0,
            "dropped": 0,
            "shed": 0,
            "conserved": True,
            "first_arrival": None,
            "last_completion": None,
        }
        self._fingerprint = None
        self._completions = 0
        self._complete_event = None
        self._window = None
        self._window_pending = None
        self._window_waiter = None

    # -- request planning --------------------------------------------------------
    def plan_request(self, trial_seed, index):
        """The (deterministic) shape of request *index*: file, pattern, mode.

        Every draw comes from ``request_rng(trial_seed, index)``, so the plan
        is a pure function of (seed, index) — independent of arrival order,
        admission order and completion order.
        """
        rng = request_rng(trial_seed, index)
        if self.workload.file_assignment == "round-robin":
            file_choice = index % len(self.files)
            rng.integers(len(self.files))  # keep the draw count identical
        else:
            file_choice = int(rng.integers(len(self.files)))
        striped_file = self.files[file_choice]
        spec = self.workload.pattern_specs[
            int(rng.integers(len(self.workload.pattern_specs)))]
        is_read = bool(rng.random() < self.workload.read_fraction)
        if spec == "a":
            is_read = True  # the ALL pattern only exists for reads
        # The record-size draw comes last, and only for a real mix, so plans
        # under single-record-size workloads are bit-identical to before the
        # mix existed (pinned by the determinism tests).
        record_sizes = self.workload.effective_record_sizes
        if len(record_sizes) > 1:
            record_size = record_sizes[int(rng.integers(len(record_sizes)))]
        else:
            record_size = record_sizes[0]
        pattern_name = ("r" if is_read else "w") + spec
        pattern = make_pattern(pattern_name, striped_file.size_bytes,
                               record_size,
                               self.machine.config.n_cps)
        return striped_file, pattern

    # -- the run -----------------------------------------------------------------
    def run(self, trial_seed=None, watchdog=None):
        """Run the whole stream to completion; returns a :class:`ServiceResult`.

        *watchdog* (wall-clock seconds) is forwarded to
        :meth:`Environment.run`: a stream that stops making simulated
        progress for that long raises a diagnosable
        :class:`~repro.sim.errors.DeadlockError` instead of hanging —
        insurance when sweeping fault scenarios that might wedge a protocol.
        """
        workload = self.workload
        seed = workload.seed if trial_seed is None else trial_seed
        arrival = workload.make_arrival_process()
        self._records = [None] * workload.n_requests if self.retain_requests \
            else None
        self._in_flight = 0
        self.max_in_flight = 0
        self._reset_fold_state()
        self._fingerprint = self.run_fingerprint(seed)
        if self._resume is not None:
            self._restore(self._resume)
        run_start = self.env.now
        if self._controller is not None:
            self.env.process(self._controller_loop())

        if arrival.closed_loop:
            streams = [
                self.env.process(self._closed_loop_client(seed, arrival, client))
                for client in range(min(workload.concurrency, workload.n_requests))
            ]
            done = AllOf(self.env, streams)
        else:
            handlers_done = self.env.event()
            if self.retain_requests:
                self.env.process(
                    self._open_loop_generator(seed, arrival, handlers_done))
            else:
                # Streaming: bound live handlers by the spawn window; the
                # backlog stays implicit in the deterministic arrival cursor.
                self._window = self._spawn_window()
                self._window_pending = 0
                self._complete_event = handlers_done
                self.env.process(self._open_loop_streaming(seed, arrival))
            done = handlers_done
        self.env.run(done, watchdog=watchdog)

        totals = self._totals
        # Redundancy epilogue: let the background rebuild and any pending
        # parity write-behind finish (the makespan below is taken from the
        # last *request* completion, so foreground metrics are unaffected),
        # then publish the array's counters as aggregate keys.  All of this
        # is conditional on a parity machine, so redundancy-free results
        # keep their exact pre-redundancy shape.
        parity = getattr(self.machine, "parity", None)
        if parity is not None:
            if parity.rebuild is not None \
                    and not parity.rebuild.done.triggered:
                self.env.run(parity.rebuild.done, watchdog=watchdog)
            if parity._parity_pending:
                self.env.run(parity.drain_parity(), watchdog=watchdog)
            for key in ("reconstructed_bytes", "parity_overhead_bytes",
                        "degraded_reads", "degraded_writes", "rebuilt_rows",
                        "rebuild_seconds"):
                totals[key] = parity.counters[key]
        # The makespan runs from the *first arrival* to the last completion:
        # an open-loop run's idle lead-in (the first interarrival gap) is not
        # service time and must not deflate throughput.
        first_arrival = totals["first_arrival"]
        end_time = totals["last_completion"]
        return ServiceResult(
            method=self.implementation.method_name,
            arrival=arrival.describe(),
            n_requests=workload.n_requests,
            concurrency=workload.concurrency,
            n_cps=self.machine.config.n_cps,
            n_iops=self.machine.config.n_iops,
            n_disks=self.machine.config.n_disks,
            seed=seed,
            start_time=run_start if first_arrival is None else first_arrival,
            end_time=run_start if end_time is None else end_time,
            total_bytes=totals["bytes_moved"],
            max_in_flight=self.max_in_flight,
            requests=list(self._records) if self._records is not None else [],
            counters={name: counter.value
                      for name, counter in self.implementation.counters.items()},
            file_sizes=[striped.size_bytes for striped in self.files],
            fault_plans=[plan.describe()
                         for plan in getattr(self.machine, "fault_plans", [])
                         if plan is not None],
            response_sketch=self._response_sketch.as_dict(),
            service_sketch=self._service_sketch.as_dict(),
            aggregates=dict(totals),
            admission=self.admission_policy.describe(),
            controller=self._controller.state()
            if self._controller is not None else {},
            class_sketches=self._serialised_class_sketches(),
        )

    def _serialised_class_sketches(self):
        if not self._class_sketches:
            return {}
        return {str(cls): sketch.as_dict()
                for cls, sketch in sorted(self._class_sketches.items())}

    def _spawn_window(self):
        """Live-handler bound for the streaming open loop.

        FIFO admission only ever grants the earliest-index waiters, so a
        fixed window that exceeds the slots that can free at one instant is
        enough for admission instants to match the materialised reference.
        A non-FIFO policy (or a shedding controller) must see the *whole*
        arrived backlog to pick (or drop) the same session the retained
        driver would, so the window opens to the full stream: memory becomes
        O(admission queue length) — the floor any online size/deadline-aware
        discipline needs — instead of O(1), and the streaming-vs-retained
        differential matrix still holds bit-identically.
        """
        window = max(2 * self.workload.concurrency, STREAM_SPAWN_WINDOW)
        controller = self._controller
        if controller is not None:
            window = max(window, 2 * controller.max_k)
            if controller.config.shed:
                return self.workload.n_requests
        if not isinstance(self.admission_policy, FIFOPolicy):
            return self.workload.n_requests
        return window

    def _controller_loop(self):
        """The control-interval heartbeat of the adaptive-K controller.

        Stops when the stream completes, or after the controller's idle
        limit (so a wedged protocol run stays visible to the watchdog
        instead of ticking simulated time forever).
        """
        controller = self._controller
        interval = controller.config.interval
        while self._completions < self.workload.n_requests:
            yield self.env.timeout(interval)
            controller.tick(self.env.now)
            if controller.exhausted:
                return

    # -- checkpoint/restart ------------------------------------------------------
    def run_fingerprint(self, trial_seed):
        """The identity a checkpoint of this run carries (see
        :func:`repro.workload.checkpoint.run_fingerprint`)."""
        machine = self.machine
        return run_fingerprint(
            workload_dict=asdict(self.workload),
            method=self.implementation.method_name,
            machine_dict=asdict(machine.config),
            trial_seed=trial_seed,
            disk_scheduler=machine.disk_scheduler,
            shared_queue_workers=machine.shared_queue_workers,
            fault_description=[plan.describe()
                               for plan in getattr(machine, "fault_plans", [])
                               if plan is not None],
            admission=self.admission_policy.describe(),
            controller=self._controller_config.describe()
            if self._controller_config is not None else None,
        )

    def write_checkpoint(self, path=None):
        """Snapshot the fold state (atomic write); see :class:`RunCheckpoint`."""
        target = self.checkpoint_path if path is None else path
        if target is None:
            raise ValueError("no checkpoint path configured")
        RunCheckpoint(
            fingerprint=self._fingerprint,
            folded=self._folded,
            response_sketch=self._response_sketch.as_dict(),
            service_sketch=self._service_sketch.as_dict(),
            aggregates=dict(self._totals),
            max_in_flight=self.max_in_flight,
            class_sketches=self._serialised_class_sketches(),
            controller=self._controller.state()
            if self._controller is not None else None,
        ).save(target)

    def _restore(self, checkpoint):
        if checkpoint.fingerprint != self._fingerprint:
            raise CheckpointError(
                f"checkpoint fingerprint {checkpoint.fingerprint} does not "
                f"match this run ({self._fingerprint}): it belongs to a "
                f"different workload, machine, method or seed")
        self._folded = IndexRanges(checkpoint.folded.as_list())
        if checkpoint.response_sketch:
            self._response_sketch = QuantileSketch.from_dict(
                checkpoint.response_sketch)
        if checkpoint.service_sketch:
            self._service_sketch = QuantileSketch.from_dict(
                checkpoint.service_sketch)
        if checkpoint.class_sketches and self._class_sketches is not None:
            self._class_sketches = {
                int(cls): QuantileSketch.from_dict(data)
                for cls, data in checkpoint.class_sketches.items()}
        self._totals.update(checkpoint.aggregates)
        self.max_in_flight = max(self.max_in_flight, checkpoint.max_in_flight)
        # The controller's state is *not* restored: the resumed replay
        # re-runs the whole simulation deterministically (only re-folding is
        # skipped), so the controller re-derives every observation, K change
        # and shed decision exactly.  The checkpoint still carries the
        # snapshot so operators can inspect a run's control state offline.

    def _closed_loop_client(self, trial_seed, arrival, client_index):
        """One closed-loop client: its share of the stream, one at a time.

        Request indices are dealt round-robin over the client population, so
        request *i*'s plan stays a pure function of (seed, i) no matter how
        many clients run.
        """
        workload = self.workload
        first = True
        for index in range(client_index, workload.n_requests,
                           workload.concurrency):
            if not first:
                # Think time separates a completion from the client's *next*
                # request; the first request of each client is issued at once.
                think = arrival.think_time_for(trial_seed, index)
                if think > 0:
                    yield self.env.timeout(think)
            first = False
            yield from self._handle_request(trial_seed, index)

    def _open_loop_generator(self, trial_seed, arrival, handlers_done):
        """Spawn a handler for every request at its scheduled arrival time."""
        workload = self.workload
        handlers = []
        clock = self.env.now
        for index in range(workload.n_requests):
            arrival_time = clock + arrival.interarrival(trial_seed, index)
            delay = arrival_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            clock = arrival_time
            handlers.append(self.env.process(
                self._handle_request(trial_seed, index)))
        yield AllOf(self.env, handlers)
        handlers_done.succeed()

    def _open_loop_streaming(self, trial_seed, arrival):
        """Constant-memory open loop: spawn handlers from an arrival cursor.

        The cursor walks arrival times in index order (the same cumulative
        interarrival sums the reference generator produces) but only keeps
        ``self._window`` handlers alive at once: the next handler is spawned
        when a handler is *admitted* (freeing a window slot) and its arrival
        time has been reached.  Because the window always holds the
        earliest-index pending requests and exceeds the number of admission
        slots that can free at one instant, every admission grant finds the
        same request at the same simulated time as the materialised
        reference — the backlog beyond the window exists only as the
        not-yet-advanced cursor, at zero memory.
        """
        workload = self.workload
        clock = self.env.now
        for index in range(workload.n_requests):
            clock += arrival.interarrival(trial_seed, index)
            while self._window_pending >= self._window:
                self._window_waiter = self.env.event()
                yield self._window_waiter
            delay = clock - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._window_pending += 1
            self.env.process(self._handle_request(trial_seed, index,
                                                  arrival_time=clock))
        # Completion of the last handler fires self._complete_event.

    def _note_admitted(self):
        """Streaming-mode bookkeeping: an admission frees a window slot."""
        if self._window_pending is None:
            return
        self._window_pending -= 1
        waiter = self._window_waiter
        if waiter is not None and self._window_pending < self._window:
            self._window_waiter = None
            waiter.succeed()

    def _fold_session(self, arrival_time, admitted_time, completed_time,
                      session, priority=0):
        """Fold one completed session into the mergeable aggregates."""
        counters = session.result.counters
        moved = session.bytes_moved
        requested = session.bytes_requested
        failed = counters.get("failed_bytes", 0)
        totals = self._totals
        totals["completed"] += 1
        totals["bytes_requested"] += requested
        totals["bytes_moved"] += moved
        totals["bytes_failed"] += failed
        totals["bytes_lost"] += counters.get("lost_bytes", 0)
        totals["retries"] += counters.get("retries", 0)
        totals["degraded"] += counters.get("degraded", 0)
        # Lazily-created session counters (checksum verification) surface as
        # lazily-created aggregate keys, so healthy results keep their shape.
        scrub = counters.get("scrub_errors", 0)
        if scrub:
            totals["scrub_errors"] = totals.get("scrub_errors", 0) + scrub
        if moved + failed != requested:
            totals["conserved"] = False
        if totals["first_arrival"] is None \
                or arrival_time < totals["first_arrival"]:
            totals["first_arrival"] = arrival_time
        if totals["last_completion"] is None \
                or completed_time > totals["last_completion"]:
            totals["last_completion"] = completed_time
        self._response_sketch.add(completed_time - arrival_time)
        self._service_sketch.add(completed_time - admitted_time)
        if self._class_sketches is not None:
            self._class_sketches.setdefault(priority, QuantileSketch()).add(
                completed_time - arrival_time)
        if self.checkpoint_every and self.checkpoint_path \
                and totals["completed"] % self.checkpoint_every == 0:
            self.write_checkpoint()

    def _fold_drop(self, arrival_time, ticket, outcome):
        """Fold one rejected session (deadline drop or load shed).

        Its bytes move to ``bytes_shed`` so conservation stays exact:
        ``bytes_moved + bytes_failed + bytes_shed == bytes_requested``.
        A rejected session still marks the first arrival (it was offered
        load) but never a completion.
        """
        totals = self._totals
        totals["bytes_requested"] += ticket.size_bytes
        totals["bytes_shed"] += ticket.size_bytes
        totals["dropped" if outcome == DROPPED else "shed"] += 1
        if totals["first_arrival"] is None \
                or arrival_time < totals["first_arrival"]:
            totals["first_arrival"] = arrival_time

    def _handle_request(self, trial_seed, index, arrival_time=None):
        """Admit, run and account one collective request.

        *arrival_time* is passed by the streaming open loop (whose handlers
        may be spawned after their planned arrival when the window is full);
        when ``None`` the request arrives the moment the handler starts.
        """
        striped_file, pattern = self.plan_request(trial_seed, index)
        if arrival_time is None:
            arrival_time = self.env.now
        priority = 0
        if self._legacy:
            slot = self.admission.request()
        else:
            priority, slack = session_qos(trial_seed, index,
                                          self.workload.priority_levels,
                                          self.workload.deadline_slack)
            slot = self.admission.request(AdmissionTicket(
                index=index,
                arrival_time=arrival_time,
                enqueue_time=self.env.now,
                size_bytes=pattern.total_transfer_bytes(),
                priority=priority,
                deadline=None if slack is None else arrival_time + slack,
            ))
        yield slot
        if not self._legacy and not slot.admitted:
            # Rejected at admission (deadline drop or load shed): the
            # session is terminal without ever running; account its bytes
            # as shed so conservation holds, free the streaming window
            # slot, and count the completion so the run can finish.
            self._note_admitted()
            if index not in self._folded:
                self._folded.add(index)
                self._fold_drop(arrival_time, slot.ticket, slot.outcome)
            if self._records is not None:
                self._records[index] = {
                    "index": index,
                    "file": striped_file.name,
                    "pattern": pattern.name,
                    "mode": pattern.mode,
                    "arrival_time": arrival_time,
                    "admitted_time": None,
                    "completed_time": None,
                    "outcome": slot.outcome,
                    "record_size": pattern.record_size,
                    "bytes_requested": slot.ticket.size_bytes,
                    "bytes_moved": 0,
                    "bytes_shed": slot.ticket.size_bytes,
                }
            self._completions += 1
            if self._complete_event is not None \
                    and self._completions == self.workload.n_requests:
                self._complete_event.succeed()
            return
        admitted_time = self.env.now
        self._in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self._in_flight)
        self._note_admitted()
        session = self.implementation.begin_transfer(pattern, striped_file)
        yield session.done
        self._in_flight -= 1
        self.admission.release(slot)
        completed_time = self.env.now
        if self._controller is not None:
            # The controller is part of the simulation (it drives K), so it
            # observes *every* completion — including ones a resumed replay
            # skips re-folding below.
            self._controller.observe(completed_time - arrival_time)
        if index not in self._folded:
            # Resumed replays skip sessions the checkpoint already folded;
            # their aggregate contribution was restored from the checkpoint.
            self._folded.add(index)
            self._fold_session(arrival_time, admitted_time, completed_time,
                               session, priority=priority)
        if self._records is not None:
            self._records[index] = {
                "index": index,
                "file": striped_file.name,
                "pattern": pattern.name,
                "mode": pattern.mode,
                "arrival_time": arrival_time,
                "admitted_time": admitted_time,
                "completed_time": completed_time,
                "record_size": pattern.record_size,
                "bytes_requested": session.bytes_requested,
                "bytes_moved": session.bytes_moved,
                # Fault accounting (all zero on a healthy machine),
                # snapshotted from the completed session's result so
                # concurrent requests cannot bleed into each other's tallies.
                "bytes_failed": session.result.counters.get("failed_bytes", 0),
                "bytes_lost": session.result.counters.get("lost_bytes", 0),
                "retries": session.result.counters.get("retries", 0),
                "degraded": session.result.counters.get("degraded", 0),
            }
        self._completions += 1
        if self._complete_event is not None \
                and self._completions == self.workload.n_requests:
            self._complete_event.succeed()


def build_service_machine(workload, machine_config=None, seed=None,
                          method="disk-directed", disk_scheduler="fcfs",
                          shared_queue_workers=2, fault_config=None,
                          on_fault="retry", device="disk", redundancy="none",
                          rebuild_bandwidth=0.0, **fs_kwargs):
    """Construct (machine, implementation, files) ready for a :class:`ServiceDriver`.

    The trial seed controls disk layout seeds, rotational positions and —
    when the workload samples a heavy-tailed size distribution — the per-file
    sizes, just as in the single-collective experiments.  ``disk_scheduler``
    is the machine-wide scheduling knob (``fcfs`` | ``sstf`` | ``cscan`` for
    the drive queue, ``shared-cscan`` etc. for cross-collective IOP
    scheduling — see :class:`repro.machine.Machine`);
    ``shared_queue_workers`` sizes each shared queue's worker pool (the
    per-drive buffer budget, the paper's double-buffering 2 by default).

    ``fault_config`` (a :class:`~repro.disk.faults.FaultConfig`) injects
    deterministic drive faults; when it actually enables anything the file
    system also gets a :class:`~repro.disk.faults.FaultPolicy` built from
    ``on_fault`` (``retry`` | ``degrade`` | ``abort``) unless the caller
    passes an explicit ``fault_policy``.  A disabled/None fault config adds
    neither, keeping healthy runs bit-identical to pre-fault builds.

    ``redundancy="parity"`` builds the declustered parity layer of
    :mod:`repro.disk.redundancy` (hot spare, degraded reads, background
    rebuild under ``rebuild_bandwidth``) and registers every file's extent
    map with it so rebuild knows which rows hold live data; the default
    ``"none"`` builds a byte-identical machine to the pre-redundancy tree.
    """
    config = machine_config if machine_config is not None else MachineConfig()
    trial_seed = workload.seed if seed is None else seed
    machine = Machine(config, seed=trial_seed, disk_scheduler=disk_scheduler,
                      shared_queue_workers=shared_queue_workers,
                      fault_config=fault_config, device=device,
                      redundancy=redundancy,
                      rebuild_bandwidth=rebuild_bandwidth)
    if fault_config is not None and fault_config.enabled:
        fs_kwargs.setdefault("fault_policy", FaultPolicy(on_fault=on_fault))
    filesystem = FileSystem(config, layout_seed=trial_seed,
                            redundancy=redundancy)
    sizes = workload.sample_sizes(trial_seed)
    files = [
        filesystem.create_file(f"svc-{index}", sizes[index],
                               layout=workload.layout)
        for index in range(workload.n_files)
    ]
    if machine.parity is not None:
        for striped in files:
            machine.parity.register_file(striped)
    implementation = make_filesystem(method, machine, **fs_kwargs)
    return machine, implementation, files


def run_service(method, workload, machine_config=None, seed=None,
                disk_scheduler="fcfs", shared_queue_workers=2,
                fault_config=None, on_fault="retry", watchdog=None,
                retain_requests=True, checkpoint_every=0,
                checkpoint_path=None, resume_from=None,
                admission_policy="fifo", admission_aging=0.0,
                edf_service_rate=0.0, controller=None,
                legacy_admission=False, device="disk", redundancy="none",
                rebuild_bandwidth=0.0, **fs_kwargs):
    """Build a machine, drive *workload* through it, return the :class:`ServiceResult`.

    Extra keyword arguments are forwarded to the file-system implementation
    (e.g. ``batch_requests=False`` to run traditional caching with the
    per-record simulator batching disabled — the benchmark baseline).
    ``fault_config`` / ``on_fault`` inject deterministic drive faults and
    pick the client response (see :func:`build_service_machine`);
    ``watchdog`` bounds wall time without simulated progress.

    ``retain_requests=False`` runs the driver in constant-memory streaming
    mode (no per-request records; percentiles come from the mergeable
    sketch — they always do).  ``checkpoint_every``/``checkpoint_path``
    write periodic fold-state checkpoints and ``resume_from`` restores one
    (see :mod:`repro.workload.checkpoint`).

    ``admission_policy`` names the admission discipline (``fifo`` | ``sjf``
    | ``priority`` | ``edf`` — see :mod:`repro.workload.admission`);
    ``admission_aging`` and ``edf_service_rate`` parameterise SJF's aging
    bound and EDF's meetability estimate.  ``controller`` (a
    :class:`~repro.workload.admission.ControllerConfig` or kwargs dict)
    enables the adaptive-K p99 controller.  ``legacy_admission=True`` runs
    the pre-admission-layer FIFO ``Resource`` path — the differential
    reference only.
    """
    machine, implementation, files = build_service_machine(
        workload, machine_config=machine_config, seed=seed, method=method,
        disk_scheduler=disk_scheduler,
        shared_queue_workers=shared_queue_workers,
        fault_config=fault_config, on_fault=on_fault, device=device,
        redundancy=redundancy, rebuild_bandwidth=rebuild_bandwidth,
        **fs_kwargs)
    driver = ServiceDriver(machine, implementation, files, workload,
                           retain_requests=retain_requests,
                           checkpoint_every=checkpoint_every,
                           checkpoint_path=checkpoint_path,
                           resume_from=resume_from,
                           admission_policy=make_admission_policy(
                               admission_policy,
                               aging_bound=admission_aging,
                               service_rate=edf_service_rate),
                           controller=controller,
                           legacy_admission=legacy_admission)
    return driver.run(trial_seed=workload.seed if seed is None else seed,
                      watchdog=watchdog)
