"""Mergeable streaming aggregates for constant-memory service runs.

The service driver used to keep every response time in a list and sort it for
percentiles — O(n) memory in the session count, which caps a run at thousands
of requests.  This module provides the constant-memory replacement: a
log-bucketed quantile sketch (HDR-histogram style) whose merge is *exact*
(bucket-count addition), so per-session measurements can be folded in at
completion, checkpointed, restored, and combined across shards in any order
without changing the answer.

Why log buckets instead of t-digest or P²:

* **Merge is associative, commutative and identity-respecting by
  construction** — merging is integer addition per bucket, so any fold order
  (streaming, checkpoint/restart, multi-host shard merge) yields the same
  sketch bit for bit.  t-digest merges are order-sensitive; P² is not
  mergeable at all.
* **The error bound is a priori and distribution-free.**  A value ``v``
  lands in a bucket whose relative width is ``2**-precision``, so any
  quantile estimate is within relative error ``2**-(precision + 1)`` of some
  order statistic at the queried rank — heavy tails, adversarial (sorted,
  reversed, constant) inputs and all.  Rank-based sketches only bound *rank*
  error, which a heavy tail turns into unbounded value error.

Domain: non-negative finite floats (response times, service times, byte
counts).  Memory is O(buckets touched): ``2**precision`` buckets per binary
order of magnitude actually observed — a few KB for realistic latency data —
independent of how many values were added.

The sketch carries count/sum/min/max alongside the buckets, so one object is
the complete mergeable aggregate for a metric; quantile estimates are clamped
into [min, max], making constant streams exact.
"""

import math

#: Default sub-bucket resolution: relative quantile error <= 2**-(7+1) ~ 0.4%.
DEFAULT_PRECISION = 7

#: Serialised-form version; bump when the dict layout changes.
SKETCH_FORMAT_VERSION = 1


def relative_error_bound(precision=DEFAULT_PRECISION):
    """The sketch's guaranteed relative value error on any quantile."""
    return 2.0 ** -(precision + 1)


def _add_partial(partials, value):
    """Fold *value* into a Shewchuk non-overlapping partials list, exactly.

    The math.fsum inner loop: every two-float add is replaced by an exact
    (hi, lo) pair, so the list always represents the *exact* real sum of
    everything folded so far.  This is what makes ``total`` independent of
    fold order — plain float accumulation rounds at every step, and merge
    order would leak into the last ulp, breaking the monoid laws the
    streaming driver and shard merge rely on.
    """
    index = 0
    for partial in partials:
        if abs(value) < abs(partial):
            value, partial = partial, value
        high = value + partial
        low = partial - (high - value)
        if low:
            partials[index] = low
            index += 1
        value = high
    partials[index:] = [value]


class RunningStats:
    """Mergeable count/sum/min/max (no samples retained).

    The sum is kept exact (Shewchuk partials), so ``total`` — the exact sum
    correctly rounded once — is identical however the adds and merges were
    ordered.  Equality compares the represented values (count, rounded
    total, extremes), not the internal partials, whose layout may legally
    differ between two orderings of the same fold.
    """

    __slots__ = ("count", "minimum", "maximum", "_partials")

    def __init__(self, count=0, total=0.0, minimum=math.inf,
                 maximum=-math.inf):
        self.count = count
        self.minimum = minimum
        self.maximum = maximum
        self._partials = [float(total)] if total else []

    def add(self, value):
        self.count += 1
        _add_partial(self._partials, value)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other):
        self.count += other.count
        for partial in other._partials:
            _add_partial(self._partials, partial)
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    @property
    def total(self):
        """The exact sum of everything added, rounded once."""
        return math.fsum(self._partials)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def as_dict(self):
        """Canonical form: the *partials* carry the sum exactly (JSON floats
        round-trip exactly in Python), so restore-then-continue folds are
        bit-identical to never having stopped; ``total`` is quoted for
        readers."""
        return {"count": self.count, "total": self.total,
                "partials": list(self._partials),
                "min": self.minimum if self.count else None,
                "max": self.maximum if self.count else None}

    @classmethod
    def from_dict(cls, data):
        stats = cls(count=int(data["count"]))
        stats._partials = [float(partial) for partial
                           in data.get("partials", (data["total"],))]
        if stats.count:
            stats.minimum = float(data["min"])
            stats.maximum = float(data["max"])
        return stats

    def __eq__(self, other):
        if not isinstance(other, RunningStats):
            return NotImplemented
        return (self.count, self.total, self.minimum, self.maximum) == \
            (other.count, other.total, other.minimum, other.maximum)

    def __repr__(self):
        return (f"RunningStats(count={self.count}, total={self.total}, "
                f"minimum={self.minimum}, maximum={self.maximum})")


class QuantileSketch:
    """Mergeable log-bucketed quantile sketch over non-negative floats.

    A positive value ``v = m * 2**e`` (``m`` in [0.5, 1)) is assigned to
    bucket ``(e, floor((m - 0.5) * 2**(precision + 1)))``; zero has its own
    bucket.  Bucket relative width is ``2**-precision``, so estimating with
    the bucket midpoint gives relative error at most
    :func:`relative_error_bound` — for any input distribution.

    Merging two sketches of equal precision adds bucket counts: exactly
    associative, commutative, and respecting the empty sketch as identity
    (property-tested in ``tests/workload/test_aggregate.py``).
    """

    __slots__ = ("precision", "stats", "_zero", "_buckets")

    def __init__(self, precision=DEFAULT_PRECISION):
        if not 1 <= int(precision) <= 20:
            raise ValueError(f"precision must be in [1, 20], got {precision}")
        self.precision = int(precision)
        self.stats = RunningStats()
        self._zero = 0
        #: (exponent, sub-bucket) -> count
        self._buckets = {}

    # -- ingest ------------------------------------------------------------------
    def add(self, value, count=1):
        """Fold *count* occurrences of *value* into the sketch."""
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(
                f"sketch domain is non-negative finite floats, got {value!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        stats = self.stats
        stats.count += count
        # Fold each occurrence separately: ``value * count`` would round the
        # product, making a weighted add differ from *count* plain adds.
        for _ in range(count):
            _add_partial(stats._partials, value)
        if value < stats.minimum:
            stats.minimum = value
        if value > stats.maximum:
            stats.maximum = value
        if value == 0.0:
            self._zero += count
            return
        mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
        sub = int((mantissa - 0.5) * (1 << (self.precision + 1)))
        key = (exponent, sub)
        self._buckets[key] = self._buckets.get(key, 0) + count

    # -- merge -------------------------------------------------------------------
    def merge(self, other):
        """Fold *other* into this sketch (exact: bucket-count addition)."""
        if not isinstance(other, QuantileSketch):
            raise TypeError(f"cannot merge {type(other).__name__} into a sketch")
        if other.precision != self.precision:
            raise ValueError(
                f"cannot merge sketches of different precision "
                f"({self.precision} vs {other.precision})")
        self.stats.merge(other.stats)
        self._zero += other._zero
        for key, count in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + count
        return self

    def copy(self):
        clone = QuantileSketch(self.precision)
        clone.merge(self)
        return clone

    # -- queries -----------------------------------------------------------------
    @property
    def count(self):
        return self.stats.count

    @property
    def total(self):
        return self.stats.total

    @property
    def mean(self):
        return self.stats.mean

    @property
    def minimum(self):
        return self.stats.minimum if self.count else 0.0

    @property
    def maximum(self):
        return self.stats.maximum if self.count else 0.0

    def _bucket_midpoint(self, key):
        exponent, sub = key
        width = 2.0 ** (exponent - self.precision - 1)
        low = (0.5 + sub / (1 << (self.precision + 1))) * 2.0 ** exponent
        return low + width / 2.0

    def _value_at_rank(self, rank):
        """Midpoint estimate of the 0-based order statistic at *rank*.

        The extreme order statistics are known exactly (the stats track
        min/max), so p0 and p100 are exact, not bucket estimates.
        """
        if rank <= 0:
            return self.minimum
        if rank >= self.count - 1:
            return self.maximum
        if rank < self._zero:
            return 0.0
        remaining = rank - self._zero
        for key in sorted(self._buckets):
            count = self._buckets[key]
            if remaining < count:
                return self._bucket_midpoint(key)
            remaining -= count
        return self.maximum  # rank beyond the population: clamp to max

    def quantile(self, fraction):
        """Estimate of the *fraction* quantile (numpy linear-interpolation
        convention: rank ``fraction * (count - 1)``, interpolated between the
        two adjacent order statistics).

        The estimate is within :func:`relative_error_bound` relative error of
        the exact sorted-list answer, and is monotone non-decreasing in
        *fraction* (both property-tested).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0.0
        position = fraction * (self.count - 1)
        low_rank = math.floor(position)
        frac = position - low_rank
        low = self._value_at_rank(low_rank)
        value = low if frac == 0.0 \
            else low + (self._value_at_rank(low_rank + 1) - low) * frac
        # Clamp into the exact observed envelope: p0/p100 are exact, and a
        # constant stream answers exactly at every quantile.
        return min(max(value, self.minimum), self.maximum)

    # -- serialisation -----------------------------------------------------------
    def as_dict(self):
        """JSON-friendly canonical form (buckets sorted, counts exact)."""
        return {
            "format": SKETCH_FORMAT_VERSION,
            "precision": self.precision,
            "zero": self._zero,
            "buckets": [[exponent, sub, self._buckets[(exponent, sub)]]
                        for exponent, sub in sorted(self._buckets)],
            "stats": self.stats.as_dict(),
        }

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict) \
                or data.get("format") != SKETCH_FORMAT_VERSION:
            raise ValueError(f"not a serialised quantile sketch: {data!r}")
        sketch = cls(precision=data["precision"])
        sketch._zero = int(data["zero"])
        sketch._buckets = {(int(exponent), int(sub)): int(count)
                           for exponent, sub, count in data["buckets"]}
        sketch.stats = RunningStats.from_dict(data["stats"])
        return sketch

    def _canonical(self):
        """The serialised form minus the stats partials, whose internal
        layout may legally differ between two orderings of the same fold."""
        data = self.as_dict()
        data["stats"] = {key: data["stats"][key]
                         for key in ("count", "total", "min", "max")}
        return data

    def __eq__(self, other):
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self._canonical() == other._canonical()

    def __repr__(self):
        return (f"<QuantileSketch n={self.count} precision={self.precision} "
                f"buckets={len(self._buckets)}>")
