"""Checkpoint/restart for long service-driver runs.

A million-session run is cheap to *measure* (constant-memory aggregates, see
:mod:`repro.workload.aggregate`) but expensive to *lose*: the fold state is
the only copy of the run's results.  A :class:`RunCheckpoint` serialises the
driver's measurement layer — the folded quantile sketches, the scalar totals,
and the set of request indices already folded — so an interrupted run can be
resumed and produce **exactly** the envelope the uninterrupted run would
have.

Why this is sound without serialising the simulator: every source of
randomness in a trial is a pure function of ``(trial_seed, index)`` (see
:mod:`repro.workload.arrival`) and the simulator is deterministic, so a
resumed run *replays* the simulation from the start — bit-identical — while
the driver skips re-folding the sessions the checkpoint already accounted
for and restores their aggregate contribution from the checkpoint.  The
result is the uninterrupted envelope, whatever event count (including
mid-session, with collectives in flight) the checkpoint was taken at.
Checkpoints may be taken at any fold boundary; nothing about the machine
state needs to be saved, which is what makes the format a few KB at any
scale.

Integrity: a checkpoint embeds a ``fingerprint`` of the run it belongs to
(workload, machine shape, method, scheduler, seed) and a ``payload_hash``
over its own content.  Loading a corrupted file, a different run's
checkpoint, or a checkpoint from an older schema raises
:class:`CheckpointError` — a stale checkpoint must never silently seed a new
run's aggregates.
"""

import hashlib
import json
import os
import tempfile
from bisect import bisect_right

#: Bump when the checkpoint layout changes; older files are rejected.
#: v2: per-priority-class sketches and the admission controller snapshot
#: joined the payload, and the fingerprint gained the admission discipline
#: and controller configuration.
CHECKPOINT_SCHEMA_VERSION = 2


class CheckpointError(ValueError):
    """A checkpoint file is corrupt, stale, or belongs to a different run."""


class IndexRanges:
    """A set of non-negative ints stored as sorted half-open ranges.

    Completion indices arrive nearly in order, so the ranges stay few and
    membership/insert stay O(log r) — constant memory in the session count.
    """

    __slots__ = ("_ranges",)

    def __init__(self, ranges=()):
        self._ranges = [[int(start), int(stop)] for start, stop in ranges]
        if any(start >= stop for start, stop in self._ranges):
            raise ValueError(f"empty or inverted range in {ranges!r}")
        if any(self._ranges[i][1] > self._ranges[i + 1][0]
               for i in range(len(self._ranges) - 1)):
            raise ValueError(f"overlapping or unsorted ranges in {ranges!r}")

    def add(self, index):
        """Insert *index*, merging with adjacent ranges."""
        index = int(index)
        ranges = self._ranges
        position = bisect_right(ranges, index, key=lambda r: r[0])
        before = ranges[position - 1] if position else None
        after = ranges[position] if position < len(ranges) else None
        if before is not None and index < before[1]:
            return  # already present
        touches_before = before is not None and index == before[1]
        touches_after = after is not None and index == after[0] - 1
        if touches_before and touches_after:
            before[1] = after[1]
            del ranges[position]
        elif touches_before:
            before[1] = index + 1
        elif touches_after:
            after[0] = index
        else:
            ranges.insert(position, [index, index + 1])

    def __contains__(self, index):
        position = bisect_right(self._ranges, index, key=lambda r: r[0])
        return position > 0 and index < self._ranges[position - 1][1]

    def __len__(self):
        return sum(stop - start for start, stop in self._ranges)

    def as_list(self):
        return [list(pair) for pair in self._ranges]

    def __repr__(self):
        return f"<IndexRanges n={len(self)} ranges={len(self._ranges)}>"


def _canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_fingerprint(workload_dict, method, machine_dict, trial_seed,
                    disk_scheduler="fcfs", shared_queue_workers=2,
                    fault_description=None, admission="fifo",
                    controller=None):
    """Stable hash naming one run: its workload, machine, method and seed.

    Two runs with the same fingerprint replay identically, so a checkpoint
    may only be restored into a driver whose fingerprint matches.
    ``admission`` (the policy's ``describe()`` string) and ``controller``
    (the :class:`~repro.workload.admission.ControllerConfig` dict, or None)
    are part of that identity: admission order is load-bearing for the
    replay, so a checkpoint from a different discipline must be rejected.
    """
    payload = {
        "workload": workload_dict,
        "method": method,
        "machine": machine_dict,
        "trial_seed": trial_seed,
        "disk_scheduler": disk_scheduler,
        "shared_queue_workers": shared_queue_workers,
        "faults": fault_description,
        "admission": admission,
        "controller": controller,
    }
    return hashlib.sha256(
        _canonical(payload).encode("utf-8")).hexdigest()[:32]


class RunCheckpoint:
    """The driver's folded measurement state at one fold boundary."""

    __slots__ = ("fingerprint", "folded", "response_sketch", "service_sketch",
                 "aggregates", "max_in_flight", "class_sketches", "controller")

    def __init__(self, fingerprint, folded, response_sketch, service_sketch,
                 aggregates, max_in_flight, class_sketches=None,
                 controller=None):
        self.fingerprint = fingerprint
        self.folded = folded                  # IndexRanges
        self.response_sketch = response_sketch  # serialised dict
        self.service_sketch = service_sketch    # serialised dict
        self.aggregates = aggregates            # scalar totals dict
        self.max_in_flight = max_in_flight
        #: per-priority-class serialised sketches, keyed by class string
        self.class_sketches = class_sketches if class_sketches else {}
        #: the adaptive controller's state snapshot (None when none ran)
        self.controller = controller

    def _payload(self):
        return {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "folded": self.folded.as_list(),
            "response_sketch": self.response_sketch,
            "service_sketch": self.service_sketch,
            "aggregates": self.aggregates,
            "max_in_flight": self.max_in_flight,
            "class_sketches": self.class_sketches,
            "controller": self.controller,
        }

    def save(self, path):
        """Atomically write the checkpoint (temp file + rename)."""
        payload = self._payload()
        payload["payload_hash"] = hashlib.sha256(
            _canonical(payload).encode("utf-8")).hexdigest()
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".ckpt-",
                                        suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path):
        """Read and validate a checkpoint; raises :class:`CheckpointError`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CheckpointError(f"unreadable checkpoint {path!r}: {error}")
        if not isinstance(payload, dict):
            raise CheckpointError(f"not a checkpoint: {path!r}")
        claimed_hash = payload.pop("payload_hash", None)
        actual_hash = hashlib.sha256(
            _canonical(payload).encode("utf-8")).hexdigest()
        if claimed_hash != actual_hash:
            raise CheckpointError(
                f"checkpoint {path!r} failed its integrity hash "
                f"(corrupt or tampered)")
        if payload.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} has schema {payload.get('schema')!r}; "
                f"this build reads schema {CHECKPOINT_SCHEMA_VERSION}")
        try:
            return cls(
                fingerprint=payload["fingerprint"],
                folded=IndexRanges(payload["folded"]),
                response_sketch=payload["response_sketch"],
                service_sketch=payload["service_sketch"],
                aggregates=dict(payload["aggregates"]),
                max_in_flight=int(payload["max_in_flight"]),
                class_sketches=dict(payload.get("class_sketches") or {}),
                controller=payload.get("controller"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint {path!r} is missing or mangles required "
                f"fields: {error}")
