"""Arrival processes for the service-style workload driver.

Two families, matching the two standard ways of loading a server:

* **closed loop** — a fixed population of clients, each issuing its next
  collective as soon as the previous one completes (plus an optional think
  time).  Offered load adapts to service capacity; this is the model behind
  the paper's single-collective experiments (population 1, no think time).
* **open loop (Poisson)** — requests arrive at fixed stochastic times drawn
  from an exponential interarrival distribution, regardless of how the server
  keeps up.  This is the request-stream model of trace-driven disk studies
  and lets throughput/latency be plotted against *offered* load.

Determinism: every random draw for request *i* of a trial comes from
:func:`request_rng`, a generator derived purely from ``(trial_seed, i)``.
Nothing depends on the order requests are planned, admitted or completed, so
serial and parallel sweeps (and any interleaving of concurrent collectives)
see bit-identical workloads.
"""

import numpy as np

#: Domain separator so workload streams never collide with the machine's
#: layout/rotation streams even when they share a trial seed.
REQUEST_STREAM_TAG = 359_245

#: Purpose tags: each consumer of a request's randomness gets its own
#: independent stream, so adding or reordering draws in one consumer can
#: never silently change another's values.
PURPOSE_ARRIVAL = 1
PURPOSE_PLAN = 2
PURPOSE_QOS = 3

_EXPONENTIAL_FLOOR = 1e-12


def request_rng(trial_seed, request_index, purpose=PURPOSE_PLAN):
    """A generator that is a pure function of ``(trial_seed, request_index, purpose)``.

    Used for everything stochastic about one request: its interarrival gap
    (``PURPOSE_ARRIVAL``) and its target file / read-write coin / pattern
    choice (``PURPOSE_PLAN``), each from an independent stream.  Deriving per
    request (rather than drawing from one sequential stream) is what keeps
    parallel sweeps bit-identical to serial ones: no draw can be perturbed by
    the order in which other requests are processed.
    """
    return np.random.default_rng(np.random.SeedSequence(
        [REQUEST_STREAM_TAG, trial_seed, request_index, purpose]))


def session_qos(trial_seed, request_index, priority_levels=1,
                deadline_slack=0.0):
    """The QoS stamp of request *request_index*: ``(priority, slack)``.

    *priority* is a static class in ``[0, priority_levels)`` (0 most urgent),
    drawn uniformly; *slack* is the session's deadline budget in seconds
    after arrival (its absolute deadline is ``arrival_time + slack``), drawn
    uniformly from ``[0.5, 1.5] * deadline_slack`` so earliest-deadline order
    differs from arrival order.  ``None`` slack means no deadline.

    Both draws come from the dedicated ``PURPOSE_QOS`` stream of
    :func:`request_rng` — deterministic per ``(trial_seed, request_index)``
    and independent of the arrival and plan streams, so stamping QoS never
    perturbs interarrival gaps or request plans.  The default stamp
    (one class, no deadline) makes **no** draws at all: workloads that do not
    opt in are bit-identical to pre-admission builds.
    """
    if priority_levels < 1:
        raise ValueError(
            f"need at least one priority level, got {priority_levels}")
    if deadline_slack < 0:
        raise ValueError(
            f"deadline slack must be >= 0, got {deadline_slack}")
    priority = 0
    slack = None
    if priority_levels > 1 or deadline_slack > 0:
        rng = request_rng(trial_seed, request_index, purpose=PURPOSE_QOS)
        if priority_levels > 1:
            priority = int(rng.integers(priority_levels))
        if deadline_slack > 0:
            slack = float(deadline_slack * rng.uniform(0.5, 1.5))
    return priority, slack


class ArrivalProcess:
    """Base class: when does request *i* enter the system?"""

    name = "abstract"

    #: True when arrivals are completion-driven (closed loop) rather than
    #: scheduled at absolute times (open loop).
    closed_loop = False

    def describe(self):
        return self.name


class PoissonArrivals(ArrivalProcess):
    """Open-loop arrivals: exponential interarrival gaps at *rate* req/s."""

    name = "poisson"
    closed_loop = False

    def __init__(self, rate):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate

    def interarrival(self, trial_seed, request_index):
        """Gap between request *request_index - 1* and *request_index*."""
        rng = request_rng(trial_seed, request_index, purpose=PURPOSE_ARRIVAL)
        draw = rng.exponential(1.0 / self.rate)
        return max(float(draw), _EXPONENTIAL_FLOOR)

    def arrival_times(self, n_requests, trial_seed):
        """Absolute arrival time of every request (cumulative gaps)."""
        times = []
        clock = 0.0
        for index in range(n_requests):
            clock += self.interarrival(trial_seed, index)
            times.append(clock)
        return times

    def describe(self):
        return f"poisson({self.rate:g}/s)"


class ClosedLoopArrivals(ArrivalProcess):
    """Closed-loop arrivals: each client reissues after completion + think time.

    ``think_time`` is the mean pause between a client's completion and its
    next request; with ``exponential_think=True`` the pause is drawn per
    request from an exponential distribution (via :func:`request_rng`),
    otherwise it is constant.
    """

    name = "closed"
    closed_loop = True

    def __init__(self, think_time=0.0, exponential_think=False):
        if think_time < 0:
            raise ValueError(f"think time must be >= 0, got {think_time}")
        self.think_time = think_time
        self.exponential_think = exponential_think

    def think_time_for(self, trial_seed, request_index):
        """Pause before request *request_index* is issued by its client."""
        if self.think_time == 0.0:
            return 0.0
        if not self.exponential_think:
            return self.think_time
        rng = request_rng(trial_seed, request_index, purpose=PURPOSE_ARRIVAL)
        draw = rng.exponential(self.think_time)
        return max(float(draw), _EXPONENTIAL_FLOOR)

    def describe(self):
        kind = "exp" if self.exponential_think else "fixed"
        return f"closed(think={self.think_time:g}s {kind})"


def make_arrival(spec, arrival_rate=50.0, think_time=0.0, exponential_think=False):
    """Factory: ``"closed"`` or ``"poisson"`` (alias ``"open"``)."""
    key = spec.lower()
    if key in ("closed", "closed-loop"):
        return ClosedLoopArrivals(think_time=think_time,
                                  exponential_think=exponential_think)
    if key in ("poisson", "open", "open-loop"):
        return PoissonArrivals(rate=arrival_rate)
    raise ValueError(f"unknown arrival process {spec!r}; "
                     f"choose 'closed' or 'poisson'")
