"""Pluggable admission control for the service driver.

The driver used to admit collectives through a plain FIFO counting
:class:`~repro.sim.resources.Resource`: K slots, granted in arrival order.
Under heavy-tailed (Pareto) file sizes that is exactly wrong for the tail —
one giant session at the head of the queue stalls every small session behind
it, and the ``service-overload`` figure shows p99 destroyed at 4x saturation.
The driver *knows each session's byte size at admission time* (the request
plan is a pure function of ``(seed, index)``), which is the precondition for
the size- and deadline-aware disciplines the I/O-service literature
recommends.  This module supplies them:

* :class:`FIFOPolicy` — the reference discipline, **bit-identical** to the
  old ``Resource`` path (the differential tests pin this);
* :class:`SJFPolicy` — shortest-job-first *at admission*, with an **aging
  bound** so large sessions cannot be starved indefinitely;
* :class:`PriorityPolicy` — static priority classes (0 is most urgent),
  FIFO within a class;
* :class:`EDFPolicy` — earliest-deadline-first with explicit **deadline
  drop**: a session whose deadline is unmeetable at grant time is dropped,
  its bytes counted as ``shed`` (conservation becomes ``moved + failed +
  shed == requested`` — dropped work is accounted, never silently lost).

plus :class:`AdaptiveConcurrencyController`, a feedback controller that
observes the p99 response time over each control interval and adapts the
admission level K (AIMD) — and, in ``shed`` mode, drops queued sessions that
have already outlived the SLO target — to hold a p99 target that no static K
can hold under open-loop overload.

Determinism: admission order is load-bearing for every guarantee the repo
makes (streaming == retained, checkpoint resume, serial == parallel sweeps).
Every decision here is a pure function of the simulated history — policy
selection keys are total orders over deterministic ticket fields, controller
observations come from the deterministic simulation — so a replay reproduces
every grant, drop and K change exactly.
"""

import math
from dataclasses import asdict, dataclass

from repro.sim.events import Event
from repro.workload.aggregate import QuantileSketch

#: Grant outcomes delivered as the grant event's value.
ADMITTED = "admitted"
#: Dropped by the policy at grant time (EDF deadline miss).
DROPPED = "dropped"
#: Dropped by the controller's load shedder.
SHED = "shed"

#: Default aging bound (simulated seconds) for size-aware admission: a waiter
#: older than this is served in FIFO order ahead of any shorter job, which
#: bounds the starvation a Pareto tail can inflict on large sessions.
DEFAULT_AGING_BOUND = 30.0


@dataclass(frozen=True)
class AdmissionTicket:
    """Everything a policy may order or drop by — known at admission time.

    All fields are pure functions of ``(trial_seed, index)`` (sizes via the
    workload's size sampler, priority/deadline via the QoS stream of
    :mod:`repro.workload.arrival`), so no policy decision can depend on
    completion order or wall-clock scheduling.
    """

    index: int
    arrival_time: float
    enqueue_time: float
    size_bytes: int
    priority: int = 0
    #: absolute deadline for completion (None: no deadline)
    deadline: float = None


class AdmissionGrant(Event):
    """The event returned by :meth:`AdmissionQueue.request`.

    Succeeds with :data:`ADMITTED` when a slot is granted, or with
    :data:`DROPPED` / :data:`SHED` when the policy or controller rejects the
    session instead.  ``outcome`` mirrors the value for post-yield checks.
    """

    __slots__ = ("ticket", "outcome")

    def __init__(self, env, ticket):
        super().__init__(env)
        self.ticket = ticket
        self.outcome = None

    def resolve(self, outcome):
        self.outcome = outcome
        self.succeed(outcome)

    @property
    def admitted(self):
        return self.outcome == ADMITTED


class AdmissionPolicy:
    """Orders the waiting queue; optionally drops at grant time."""

    name = "abstract"
    #: True when the policy may refuse a session at grant time.
    drops = False

    def select(self, waiters, now):
        """Index (into *waiters*, which is in enqueue order) to grant next."""
        raise NotImplementedError

    def unmeetable(self, ticket, now):
        """True when *ticket* must be dropped rather than granted (only
        consulted when :attr:`drops` is True)."""
        return False

    def describe(self):
        """Stable identity string (enters the run fingerprint)."""
        return self.name

    def __repr__(self):
        return f"<{type(self).__name__} {self.describe()}>"


class FIFOPolicy(AdmissionPolicy):
    """Arrival order — the reference, bit-identical to the old Resource path."""

    name = "fifo"

    def select(self, waiters, now):
        return 0


class SJFPolicy(AdmissionPolicy):
    """Shortest job first at admission, with an aging bound.

    The waiter with the smallest ``size_bytes`` is granted next — unless any
    waiter has been queued longer than ``aging_bound`` simulated seconds, in
    which case the *oldest* such waiter is granted instead (FIFO among the
    overdue).  The bound is what keeps a sustained stream of small sessions
    from starving a Pareto-tail giant forever: once overdue, a large session
    jumps every shorter job.  ``aging_bound=math.inf`` disables aging (pure
    SJF, starvation and all — for the differential tests only).
    """

    name = "sjf"

    def __init__(self, aging_bound=DEFAULT_AGING_BOUND):
        if aging_bound <= 0:
            raise ValueError(f"aging bound must be positive, got {aging_bound}")
        self.aging_bound = aging_bound

    def select(self, waiters, now):
        if self.aging_bound != math.inf:
            for position, ticket in enumerate(waiters):
                # Enqueue order == list order, so the first overdue waiter
                # is the oldest one.
                if now - ticket.enqueue_time >= self.aging_bound:
                    return position
        return min(range(len(waiters)),
                   key=lambda i: (waiters[i].size_bytes, waiters[i].index))

    def describe(self):
        return f"sjf(aging={self.aging_bound:g})"


class PriorityPolicy(AdmissionPolicy):
    """Static priority classes: lowest class number first, FIFO within."""

    name = "priority"

    def select(self, waiters, now):
        return min(range(len(waiters)),
                   key=lambda i: (waiters[i].priority, i))


class EDFPolicy(AdmissionPolicy):
    """Earliest deadline first, with explicit drop of unmeetable sessions.

    At every grant instant the earliest-deadline waiter is considered; if its
    deadline can no longer be met it is **dropped** (its grant resolves
    :data:`DROPPED`, its bytes are accounted as shed) and the next candidate
    is considered — so exactly the sessions whose deadlines are unmeetable at
    grant time are dropped, no more and no fewer.  "Unmeetable" means the
    deadline has passed, or — when ``service_rate`` (bytes/second) is given —
    that ``now + size / service_rate`` already overruns it.  Sessions without
    a deadline sort last and are never dropped.
    """

    name = "edf"
    drops = True

    def __init__(self, service_rate=0.0):
        if service_rate < 0:
            raise ValueError(
                f"service rate must be >= 0, got {service_rate}")
        self.service_rate = service_rate

    def _deadline(self, ticket):
        return math.inf if ticket.deadline is None else ticket.deadline

    def select(self, waiters, now):
        return min(range(len(waiters)),
                   key=lambda i: (self._deadline(waiters[i]),
                                  waiters[i].index))

    def unmeetable(self, ticket, now):
        if ticket.deadline is None:
            return False
        estimate = ticket.size_bytes / self.service_rate \
            if self.service_rate > 0 else 0.0
        return now + estimate > ticket.deadline

    def describe(self):
        return f"edf(rate={self.service_rate:g})"


#: Registry for :func:`make_admission_policy`.
ADMISSION_POLICIES = ("fifo", "sjf", "priority", "edf")


def make_admission_policy(spec, aging_bound=0.0, service_rate=0.0):
    """Factory: policy name -> :class:`AdmissionPolicy` instance.

    ``aging_bound`` (SJF; 0 means the default bound) and ``service_rate``
    (EDF; bytes/s used in the meetability estimate, 0 means deadline-passed
    only) parameterise the policies that use them; passing either to a policy
    that ignores it is harmless, which keeps flat experiment configs simple.
    """
    if isinstance(spec, AdmissionPolicy):
        return spec
    key = str(spec).lower()
    if key == "fifo":
        return FIFOPolicy()
    if key == "sjf":
        return SJFPolicy(aging_bound=aging_bound or DEFAULT_AGING_BOUND)
    if key == "priority":
        return PriorityPolicy()
    if key == "edf":
        return EDFPolicy(service_rate=service_rate)
    raise ValueError(f"unknown admission policy {spec!r}; "
                     f"choose one of {ADMISSION_POLICIES}")


class AdmissionQueue:
    """A K-slot admission scheduler with a pluggable ordering policy.

    The grant mechanics mirror :class:`~repro.sim.resources.Resource`
    exactly — immediate synchronous grant while slots are free, handoff at
    release before anything else runs — so with :class:`FIFOPolicy` the event
    sequence (and therefore every simulated result) is bit-identical to the
    counting-semaphore driver this replaces; the differential tests pin that.
    Non-FIFO policies differ only in *which* waiter each freed slot goes to.

    ``set_capacity`` is the controller's actuator: growing K grants waiting
    sessions immediately, shrinking K lets the excess drain as sessions
    complete (slots are never revoked mid-collective).
    """

    __slots__ = ("env", "capacity", "policy", "name", "_users", "_waiters",
                 "dropped", "shed", "max_queue_length")

    def __init__(self, env, capacity, policy=None, name="service-admission"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.policy = policy if policy is not None else FIFOPolicy()
        self.name = name
        self._users = []
        self._waiters = []      # AdmissionGrant, in enqueue order
        self.dropped = 0
        self.shed = 0
        self.max_queue_length = 0

    # -- introspection --------------------------------------------------------
    @property
    def count(self):
        return len(self._users)

    @property
    def queue_length(self):
        return len(self._waiters)

    # -- core API -------------------------------------------------------------
    def request(self, ticket):
        """Ask for admission; the returned grant fires when resolved."""
        grant = AdmissionGrant(self.env, ticket)
        if len(self._users) < self.capacity and not self._waiters:
            self._grant_or_drop(grant)
        else:
            self._waiters.append(grant)
            if len(self._waiters) > self.max_queue_length:
                self.max_queue_length = len(self._waiters)
        return grant

    def release(self, grant):
        """Return a slot; hand it to the policy's next choice."""
        try:
            self._users.remove(grant)
        except ValueError:
            raise ValueError(
                "release() of a grant that does not hold a slot")
        self._drain()

    def set_capacity(self, capacity):
        """Adapt K.  Growth admits waiters now; shrinkage drains naturally."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._drain()

    def shed_older_than(self, age, now):
        """Drop every waiter whose *arrival* is more than *age* seconds old.

        The controller's load shedder: a session that has already waited
        longer than the SLO target cannot possibly meet it, so holding it in
        the queue only adds to the backlog.  Returns the number shed.
        """
        survivors = []
        count = 0
        for grant in self._waiters:
            if now - grant.ticket.arrival_time > age:
                count += 1
                self.shed += 1
                grant.resolve(SHED)
            else:
                survivors.append(grant)
        self._waiters = survivors
        return count

    # -- internals ------------------------------------------------------------
    def _grant_or_drop(self, grant):
        """Resolve *grant* at this instant: admit it, or drop it unmet."""
        if self.policy.drops and self.policy.unmeetable(grant.ticket,
                                                        self.env.now):
            self.dropped += 1
            grant.resolve(DROPPED)
            return False
        self._users.append(grant)
        grant.resolve(ADMITTED)
        return True

    def _drain(self):
        waiters = self._waiters
        users = self._users
        while waiters and len(users) < self.capacity:
            position = self.policy.select(
                [grant.ticket for grant in waiters], self.env.now)
            self._grant_or_drop(waiters.pop(position))

    def __repr__(self):
        return (f"<AdmissionQueue {self.name} policy={self.policy.describe()} "
                f"{self.count}/{self.capacity} used, "
                f"{self.queue_length} waiting>")


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the p99-target feedback controller.

    ``target_p99`` is the SLO (seconds, arrival-to-completion).  Each
    ``interval`` simulated seconds the controller examines the p99 of the
    sessions that completed during the interval and applies AIMD to K:
    multiplicative ``backoff`` when over target, additive ``increase`` when
    under ``headroom`` of it.  With ``shed=True`` it also drops every queued
    session older than ``shed_age`` (0: the target itself) — under open-loop
    overload no K can bound the *queueing* delay, so shedding is the only
    lever that actually holds the SLO; the dropped bytes stay visible in the
    shed accounting.
    """

    target_p99: float
    interval: float = 0.5
    min_k: int = 1
    #: 0 means "4x the workload's static K" (resolved by the driver)
    max_k: int = 0
    increase: int = 1
    backoff: float = 0.5
    headroom: float = 0.7
    shed: bool = False
    #: age (seconds since arrival) beyond which queued sessions are shed
    #: when ``shed`` is on; 0 means ``target_p99``
    shed_age: float = 0.0
    #: completions an interval needs before its p99 is acted on
    min_samples: int = 5
    #: consecutive intervals without a completion before the controller
    #: stops ticking (keeps a wedged run inside the watchdog's reach)
    idle_limit: int = 1000

    def __post_init__(self):
        if self.target_p99 <= 0:
            raise ValueError(
                f"target p99 must be positive, got {self.target_p99}")
        if self.interval <= 0:
            raise ValueError(
                f"control interval must be positive, got {self.interval}")
        if self.min_k < 1:
            raise ValueError(f"min_k must be >= 1, got {self.min_k}")
        if not 0.0 < self.backoff < 1.0:
            raise ValueError(
                f"backoff must be in (0, 1), got {self.backoff}")

    def describe(self):
        """Stable identity dict (enters the run fingerprint)."""
        return asdict(self)


class AdaptiveConcurrencyController:
    """Feedback control of the admission level K against a p99 target.

    The driver feeds every completion's response time into
    :meth:`observe`; :meth:`tick` runs once per control interval from a
    simulation process.  All state is a pure function of the simulated
    history, so replays (checkpoint resume, streaming vs retained)
    reproduce every K change and shed decision exactly.  :meth:`state`
    serialises the controller for the run checkpoint.
    """

    __slots__ = ("config", "queue", "k", "max_k", "intervals", "observed",
                 "shed_total", "k_min_seen", "k_max_seen", "k_changes",
                 "last_p99", "_interval_sketch", "_idle_intervals",
                 "_last_completed")

    def __init__(self, config, queue, max_k):
        self.config = config
        self.queue = queue
        self.k = queue.capacity
        self.intervals = 0
        self.observed = 0
        self.shed_total = 0
        self.k_min_seen = self.k
        self.k_max_seen = self.k
        self.k_changes = 0
        self.last_p99 = None
        self._interval_sketch = QuantileSketch()
        self._idle_intervals = 0
        self._last_completed = 0
        # Resolved bound (config.max_k == 0 defers to the driver's default).
        self.max_k = max_k

    def observe(self, response_time):
        """Fold one completed session's response time into the interval."""
        self._interval_sketch.add(response_time)
        self.observed += 1

    def tick(self, now):
        """One control interval: act on the interval's p99, then reset it."""
        config = self.config
        sketch = self._interval_sketch
        completed = sketch.count
        p99 = None
        if completed >= config.min_samples:
            p99 = sketch.quantile(0.99)
            new_k = self.k
            if p99 > config.target_p99:
                new_k = max(config.min_k, int(self.k * config.backoff))
            elif p99 <= config.headroom * config.target_p99:
                new_k = min(self.max_k, self.k + config.increase)
            if new_k != self.k:
                self.k = new_k
                self.k_changes += 1
                self.k_min_seen = min(self.k_min_seen, new_k)
                self.k_max_seen = max(self.k_max_seen, new_k)
                self.queue.set_capacity(new_k)
        if config.shed:
            age = config.shed_age if config.shed_age > 0 else config.target_p99
            self.shed_total += self.queue.shed_older_than(age, now)
        self.last_p99 = p99
        self.intervals += 1
        if completed == 0 and self.observed == self._last_completed:
            self._idle_intervals += 1
        else:
            self._idle_intervals = 0
        self._last_completed = self.observed
        self._interval_sketch = QuantileSketch()

    @property
    def exhausted(self):
        """True when the idle limit says to stop ticking (wedged run)."""
        return self._idle_intervals >= self.config.idle_limit

    def state(self):
        """Serialisable snapshot (checkpointed; round-trips bit-identically)."""
        return {
            "k": self.k,
            "intervals": self.intervals,
            "observed": self.observed,
            "shed": self.shed_total,
            "k_changes": self.k_changes,
            "k_min_seen": self.k_min_seen,
            "k_max_seen": self.k_max_seen,
            "last_p99": self.last_p99,
            "target_p99": self.config.target_p99,
        }
