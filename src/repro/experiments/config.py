"""Experiment descriptions and aggregated trial results."""

import math
import statistics
from dataclasses import dataclass, field, replace

#: 2^20 bytes, the paper's "Mbyte".
MEGABYTE = 2 ** 20

#: The paper's file size: 10 MB = 1280 eight-kilobyte blocks.
PAPER_FILE_SIZE = 10 * MEGABYTE

#: The two record sizes the paper reports (8 bytes and one full block).
PAPER_RECORD_SIZES = (8, 8192)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one data point (one method, one configuration)."""

    method: str = "disk-directed"
    pattern: str = "rb"
    record_size: int = 8192
    layout: str = "contiguous"
    file_size: int = PAPER_FILE_SIZE
    n_cps: int = 16
    n_iops: int = 16
    n_disks: int = 16
    block_size: int = 8192
    #: machine-wide scheduling knob: a drive-queue policy (``fcfs`` /
    #: ``sstf`` / ``cscan``) or a cross-collective IOP policy
    #: (``shared-cscan`` etc.) — see :class:`repro.machine.Machine`.
    disk_scheduler: str = "fcfs"
    #: storage backend: ``disk`` (the paper's HP 97560) or ``ssd`` (the
    #: flash model of :mod:`repro.disk.flash`, bandwidth-matched to the
    #: disk) — see :class:`repro.machine.Machine`.
    device: str = "disk"
    #: redundancy scheme: ``none`` or ``parity`` (the declustered RAID-5
    #: layer of :mod:`repro.disk.redundancy`: rotated parity, hot spare,
    #: degraded reads and background rebuild) — see
    #: :class:`repro.machine.Machine`.
    redundancy: str = "none"
    seed: int = 0
    label: str = ""

    def with_overrides(self, **kwargs):
        """Copy with some fields replaced."""
        return replace(self, **kwargs)

    def describe(self):
        """Readable one-liner for logs and reports."""
        return (f"{self.method} {self.pattern} rs={self.record_size} "
                f"{self.layout} {self.file_size // MEGABYTE} MB "
                f"cps={self.n_cps} iops={self.n_iops} disks={self.n_disks}")


@dataclass
class TrialSummary:
    """Aggregate of the replicated trials of one experiment."""

    config: ExperimentConfig
    results: list = field(default_factory=list)

    @property
    def throughputs_mb(self):
        """Per-trial normalised throughput in Mbytes/s."""
        return [result.throughput_mb for result in self.results]

    @property
    def mean_throughput_mb(self):
        """Mean throughput over the trials."""
        if not self.results:
            return 0.0
        return statistics.fmean(self.throughputs_mb)

    @property
    def stdev_throughput_mb(self):
        """Sample standard deviation (0 with fewer than two trials)."""
        if len(self.results) < 2:
            return 0.0
        return statistics.stdev(self.throughputs_mb)

    @property
    def coefficient_of_variation(self):
        """cv = stdev / mean, the dispersion measure the paper quotes."""
        mean = self.mean_throughput_mb
        if mean == 0 or math.isnan(mean):
            return 0.0
        return self.stdev_throughput_mb / mean

    @property
    def mean_elapsed(self):
        """Mean simulated transfer time in seconds."""
        if not self.results:
            return 0.0
        return statistics.fmean(result.elapsed for result in self.results)

    def as_row(self):
        """Flat dictionary for report tables."""
        return {
            "label": self.config.label or self.config.method,
            "method": self.config.method,
            "pattern": self.config.pattern,
            "record_size": self.config.record_size,
            "layout": self.config.layout,
            "cps": self.config.n_cps,
            "iops": self.config.n_iops,
            "disks": self.config.n_disks,
            "throughput_mb": self.mean_throughput_mb,
            "cv": self.coefficient_of_variation,
            "trials": len(self.results),
        }
