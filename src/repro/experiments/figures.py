"""Generators for every figure and table in the paper's evaluation.

Each ``figureN`` function builds the list of :class:`ExperimentConfig` points
that figure plots, runs them (with the requested number of trials) and returns
both the raw summaries and a plain-text rendering shaped like the paper's
figure.  The module doubles as the ``ddio-figures`` command-line tool::

    ddio-figures figure3 --file-mb 1 --trials 1
    ddio-figures figure5 --record-size 8192
    ddio-figures all --paper-scale          # the full (slow) 10 MB runs
"""

import argparse
import sys

from repro.experiments.claims import check_headline_claims
from repro.experiments.config import MEGABYTE, ExperimentConfig
from repro.experiments.report import format_bar_chart, format_series_table, format_table
from repro.experiments.runner import run_trials, sweep, sweep_parallel
from repro.experiments.service import (
    service_admission_figure,
    service_faults_figure,
    service_figure,
    service_flash_figure,
    service_millions_figure,
    service_overload_figure,
    service_rebuild_figure,
    service_scheduler_figure,
)
from repro.machine import MachineConfig
from repro.patterns import READ_PATTERN_NAMES, WRITE_PATTERN_NAMES

#: Figure 3/4 compare these methods (the paper shows DDIO with and without the
#: presort only for the random layout, where it matters).
_FIG3_METHODS = ("disk-directed", "disk-directed-nosort", "traditional")
_FIG4_METHODS = ("disk-directed", "traditional")

#: Sensitivity figures use these four patterns with 8 KB records.
_SENSITIVITY_PATTERNS = ("ra", "rn", "rb", "rc")


def _default_file_size(record_size, file_mb=None, paper_scale=False):
    """Pick a file size: paper scale (10 MB), an explicit override, or a
    wall-clock-friendly default (small records are far more expensive to
    simulate because traditional caching issues one request per record)."""
    if file_mb is not None:
        return int(file_mb * MEGABYTE)
    if paper_scale:
        return 10 * MEGABYTE
    return MEGABYTE if record_size <= 1024 else 4 * MEGABYTE


def _pattern_sweep(methods, patterns, record_size, layout, file_size, seed=0):
    configs = []
    for pattern in patterns:
        for method in methods:
            configs.append(ExperimentConfig(
                method=method,
                pattern=pattern,
                record_size=record_size,
                layout=layout,
                file_size=file_size,
                seed=seed,
                label=method,
            ))
    return configs


def _render_pattern_figure(title, summaries):
    entries = [(f"{s.config.pattern:4s} {s.config.method}", s.mean_throughput_mb)
               for s in summaries]
    rows = [s.as_row() for s in summaries]
    text = (f"{title}\n\n"
            + format_table(rows, columns=["pattern", "method", "record_size",
                                          "throughput_mb", "cv", "trials"])
            + "\n\n" + format_bar_chart(entries))
    return text


def figure3(record_sizes=(8, 8192), file_mb=None, trials=1, paper_scale=False,
            patterns=None, progress=None, workers=None, cache=None):
    """Figure 3: all patterns, random-blocks layout, TC vs DDIO vs DDIO+presort."""
    all_summaries = []
    texts = []
    for record_size in record_sizes:
        file_size = _default_file_size(record_size, file_mb, paper_scale)
        selected = patterns or (READ_PATTERN_NAMES + WRITE_PATTERN_NAMES)
        configs = _pattern_sweep(_FIG3_METHODS, selected, record_size,
                                 "random", file_size)
        summaries = sweep_parallel(configs, trials=trials, progress=progress,
                                   workers=workers, cache=cache)
        all_summaries.extend(summaries)
        texts.append(_render_pattern_figure(
            f"Figure 3 ({record_size}-byte records, random-blocks layout, "
            f"{file_size // MEGABYTE} MB file)", summaries))
    return all_summaries, "\n\n".join(texts)


def figure4(record_sizes=(8, 8192), file_mb=None, trials=1, paper_scale=False,
            patterns=None, progress=None, workers=None, cache=None):
    """Figure 4: all patterns, contiguous layout, TC vs DDIO."""
    all_summaries = []
    texts = []
    for record_size in record_sizes:
        file_size = _default_file_size(record_size, file_mb, paper_scale)
        selected = patterns or (READ_PATTERN_NAMES + WRITE_PATTERN_NAMES)
        configs = _pattern_sweep(_FIG4_METHODS, selected, record_size,
                                 "contiguous", file_size)
        summaries = sweep_parallel(configs, trials=trials, progress=progress,
                                   workers=workers, cache=cache)
        all_summaries.extend(summaries)
        texts.append(_render_pattern_figure(
            f"Figure 4 ({record_size}-byte records, contiguous layout, "
            f"{file_size // MEGABYTE} MB file)", summaries))
    return all_summaries, "\n\n".join(texts)


def _sensitivity(vary, values, fixed, record_size, file_mb, trials,
                 paper_scale, patterns, progress=None, workers=None,
                 cache=None):
    """Shared machinery of Figures 5-8: vary one machine dimension."""
    file_size = _default_file_size(record_size, file_mb, paper_scale)
    configs = []
    for value in values:
        for pattern in patterns:
            for method in ("disk-directed", "traditional"):
                overrides = dict(fixed)
                overrides[vary] = value
                configs.append(ExperimentConfig(
                    method=method,
                    pattern=pattern,
                    record_size=record_size,
                    file_size=file_size,
                    label=f"{method}-{pattern}",
                    **overrides,
                ))
    summaries = sweep_parallel(configs, trials=trials, progress=progress,
                               workers=workers, cache=cache)
    series = {}
    for summary in summaries:
        key = f"{'DDIO' if summary.config.method == 'disk-directed' else 'TC'} " \
              f"{summary.config.pattern}"
        series.setdefault(key, []).append(
            (getattr(summary.config, vary), summary.mean_throughput_mb))
    return summaries, series


def figure5(record_size=8192, file_mb=None, trials=1, paper_scale=False,
            cps=(1, 2, 4, 8, 16), patterns=_SENSITIVITY_PATTERNS, progress=None,
            workers=None, cache=None):
    """Figure 5: vary the number of CPs; contiguous layout, 8 KB records."""
    summaries, series = _sensitivity(
        "n_cps", cps, {"layout": "contiguous"}, record_size, file_mb, trials,
        paper_scale, patterns, progress, workers, cache)
    text = ("Figure 5: throughput vs number of CPs (contiguous layout)\n\n"
            + format_series_table(series, x_label="CPs"))
    return summaries, text


def figure6(record_size=8192, file_mb=None, trials=1, paper_scale=False,
            iops=(1, 2, 4, 8, 16), patterns=_SENSITIVITY_PATTERNS, progress=None,
            workers=None, cache=None):
    """Figure 6: vary the number of IOPs (and busses); 16 disks total."""
    summaries, series = _sensitivity(
        "n_iops", iops, {"layout": "contiguous", "n_disks": 16}, record_size,
        file_mb, trials, paper_scale, patterns, progress, workers, cache)
    text = ("Figure 6: throughput vs number of IOPs/busses (contiguous layout, "
            "16 disks)\n\n" + format_series_table(series, x_label="IOPs"))
    return summaries, text


def figure7(record_size=8192, file_mb=None, trials=1, paper_scale=False,
            disks=(1, 2, 4, 8, 16, 32), patterns=_SENSITIVITY_PATTERNS,
            progress=None, workers=None, cache=None):
    """Figure 7: vary the number of disks on a single IOP; contiguous layout."""
    summaries, series = _sensitivity(
        "n_disks", disks, {"layout": "contiguous", "n_iops": 1, "n_cps": 16},
        record_size, file_mb, trials, paper_scale, patterns, progress,
        workers, cache)
    text = ("Figure 7: throughput vs number of disks (1 IOP, contiguous layout)\n\n"
            + format_series_table(series, x_label="disks"))
    return summaries, text


def figure8(record_size=8192, file_mb=None, trials=1, paper_scale=False,
            disks=(1, 2, 4, 8, 16, 32), patterns=_SENSITIVITY_PATTERNS,
            progress=None, workers=None, cache=None):
    """Figure 8: vary the number of disks on a single IOP; random-blocks layout."""
    summaries, series = _sensitivity(
        "n_disks", disks, {"layout": "random", "n_iops": 1, "n_cps": 16},
        record_size, file_mb, trials, paper_scale, patterns, progress,
        workers, cache)
    text = ("Figure 8: throughput vs number of disks (1 IOP, random-blocks "
            "layout)\n\n" + format_series_table(series, x_label="disks"))
    return summaries, text


def table1():
    """Table 1: the simulator parameters (no simulation needed)."""
    config = MachineConfig()
    spec = config.disk_spec
    rows = [
        {"parameter": "Compute processors (CPs)", "value": str(config.n_cps)},
        {"parameter": "I/O processors (IOPs)", "value": str(config.n_iops)},
        {"parameter": "CPU speed, type", "value": f"{config.cpu_mhz:.0f} MHz, RISC"},
        {"parameter": "Disks", "value": str(config.n_disks)},
        {"parameter": "Disk type", "value": spec.name},
        {"parameter": "Disk capacity",
         "value": f"{spec.capacity_bytes / 1e9:.1f} GB"},
        {"parameter": "Disk peak transfer rate",
         "value": f"{spec.media_transfer_rate / MEGABYTE:.2f} Mbytes/s"},
        {"parameter": "File-system block size", "value": f"{config.block_size // 1024} KB"},
        {"parameter": "I/O buses (one per IOP)", "value": str(config.n_iops)},
        {"parameter": "I/O bus peak bandwidth",
         "value": f"{config.bus_bandwidth / 1e6:.0f} Mbytes/s"},
        {"parameter": "Interconnect bandwidth",
         "value": f"{config.interconnect_bandwidth / 1e6:.0f} x 10^6 bytes/s"},
        {"parameter": "Interconnect latency",
         "value": f"{config.router_latency * 1e9:.0f} ns per router"},
        {"parameter": "Routing", "value": "wormhole (message-level model)"},
    ]
    return rows, "Table 1: simulator parameters\n\n" + format_table(
        rows, columns=["parameter", "value"])


#: Registry used by the CLI and the benchmark harness.  ``service`` goes
#: beyond the paper: concurrent mixed collectives vs offered load (see
#: repro.experiments.service and docs/workloads.md).  ``service-sched``
#: compares per-collective presort with the shared per-disk IOP queues
#: (CSCAN/SSTF, worker-pool sizes) at K in {1, 2, 4, 8} (docs/scheduling.md).
#: ``service-overload`` pushes an open loop to ~4x saturation with
#: heavy-tailed file sizes and an 8-byte record mix (docs/workloads.md).
#: ``service-faults`` injects deterministic disk faults (transient errors,
#: a fail-slow drive, one fail-stop drive out of 32) and compares goodput
#: and tail latency under bounded retry (docs/faults.md).
#: ``service-millions`` measures the overload asymptote directly: a million
#: 8 KB sessions per headline row through the constant-memory streaming
#: driver on a 128-disk machine (docs/workloads.md) — slow (tens of
#: minutes); pass ``--json`` to refresh its docs/data artifact.
#: ``service-admission`` sweeps the admission disciplines (FIFO, SJF,
#: priority, EDF, adaptive-K SLO controller) over the overload workload
#: (docs/workloads.md); pass ``--json`` to refresh its docs/data artifact.
#: ``ddio-flash`` re-asks the paper's question on flash: DDIO vs TC on the
#: disk and on a bandwidth-matched SSD (docs/flash.md); pass ``--json`` to
#: refresh its docs/data artifact.
#: ``service-rebuild`` kills a drive under declustered parity and follows
#: goodput through degraded reads and the online rebuild, asserting zero
#: failed bytes (docs/redundancy.md); pass ``--json`` to refresh its
#: docs/data artifact.
FIGURES = {
    "table1": table1,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "service": service_figure,
    "service-sched": service_scheduler_figure,
    "service-overload": service_overload_figure,
    "service-faults": service_faults_figure,
    "service-millions": service_millions_figure,
    "service-admission": service_admission_figure,
    "ddio-flash": service_flash_figure,
    "service-rebuild": service_rebuild_figure,
}


def _progress_printer(index, total, summary):
    row = summary.as_row()
    print(f"  [{index + 1}/{total}] {row['method']:22s} {row['pattern']:4s} "
          f"{row['layout']:10s} rs={row['record_size']:<5d} "
          f"-> {row['throughput_mb']:.2f} MB/s", file=sys.stderr)


def main(argv=None):
    """Command-line entry point: regenerate one figure (or all of them)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the figures of Kotz's disk-directed I/O paper "
                    "from the simulation.")
    parser.add_argument("figure", choices=sorted(FIGURES) + ["all", "claims"],
                        help="which figure to regenerate")
    parser.add_argument("--trials", type=int, default=1,
                        help="independent trials per data point (paper: 5)")
    parser.add_argument("--file-mb", type=float, default=None,
                        help="file size in Mbytes (default: scaled to record size)")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's 10 MB file everywhere (slow for "
                             "8-byte records)")
    parser.add_argument("--record-size", type=int, default=None,
                        help="restrict figures 3/4 to one record size")
    parser.add_argument("--patterns", type=str, default=None,
                        help="comma-separated list of patterns to run")
    parser.add_argument("--workers", type=int, default=None,
                        help="run data points in a pool of N processes "
                             "(default: serial)")
    parser.add_argument("--cache", type=str, default=None, metavar="DIR",
                        help="cache trial results on disk so re-running a "
                             "figure only simulates changed data points")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write the figure's docs/data JSON "
                             "artifact (service-millions, service-admission, "
                             "service-faults, ddio-flash and service-rebuild "
                             "only)")
    parser.add_argument("--quiet", action="store_true", help="suppress progress")
    args = parser.parse_args(argv)

    progress = None if args.quiet else _progress_printer
    patterns = args.patterns.split(",") if args.patterns else None
    record_sizes = (args.record_size,) if args.record_size else (8, 8192)

    selected = sorted(FIGURES) if args.figure == "all" else [args.figure]
    if args.figure == "claims":
        selected = ["figure3", "figure4"]
    collected = []
    for name in selected:
        generator = FIGURES[name]
        if name == "table1":
            _rows, text = generator()
        elif name in ("service", "service-sched", "service-overload",
                      "service-faults", "service-millions",
                      "service-admission", "ddio-flash",
                      "service-rebuild"):
            extra = {"json_path": args.json} \
                if name in ("service-millions", "service-admission",
                            "service-faults", "ddio-flash",
                            "service-rebuild") \
                and args.json else {}
            summaries, text = generator(
                trials=args.trials, progress=progress,
                workers=args.workers, cache=args.cache, **extra)
            collected.extend(summaries)
        elif name in ("figure3", "figure4"):
            summaries, text = generator(
                record_sizes=record_sizes, file_mb=args.file_mb,
                trials=args.trials, paper_scale=args.paper_scale,
                patterns=patterns, progress=progress,
                workers=args.workers, cache=args.cache)
            collected.extend(summaries)
        else:
            summaries, text = generator(
                record_size=args.record_size or 8192, file_mb=args.file_mb,
                trials=args.trials, paper_scale=args.paper_scale,
                progress=progress, workers=args.workers, cache=args.cache)
            collected.extend(summaries)
        print(text)
        print()

    if args.figure == "claims":
        checks = check_headline_claims(collected)
        print("Headline claims\n")
        print(format_table([check.as_row() for check in checks],
                           columns=["claim", "paper", "measured", "holds"]))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
