"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.experiments.config` — experiment descriptions (method, pattern,
  record size, layout, machine shape, file size, seed).
* :mod:`repro.experiments.runner` — runs one experiment or a set of replicated
  trials and aggregates throughput statistics.
* :mod:`repro.experiments.figures` — one generator per paper figure
  (Figures 3-8) and Table 1; also the ``ddio-figures`` command-line entry point.
* :mod:`repro.experiments.report` — plain-text tables and bar charts.
* :mod:`repro.experiments.claims` — checks the paper's headline claims
  (e.g. "disk-directed I/O was up to 16 times faster") against measured data.
* :mod:`repro.experiments.service` — beyond the paper: the service-style
  experiment family (concurrent mixed collectives vs offered load).
"""

from repro.experiments.config import ExperimentConfig, TrialSummary
from repro.experiments.runner import (
    ResultCache,
    register_experiment_family,
    run_experiment,
    run_trial,
    run_trials,
    sweep,
    sweep_parallel,
    trial_cache_key,
)
from repro.experiments.service import (
    ServiceExperimentConfig,
    run_service_experiment,
    service_figure,
)
from repro.experiments.figures import (
    FIGURES,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
)

__all__ = [
    "ExperimentConfig",
    "FIGURES",
    "ResultCache",
    "ServiceExperimentConfig",
    "TrialSummary",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "register_experiment_family",
    "run_experiment",
    "run_service_experiment",
    "run_trial",
    "run_trials",
    "service_figure",
    "sweep",
    "sweep_parallel",
    "table1",
    "trial_cache_key",
]
