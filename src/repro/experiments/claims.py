"""Checks of the paper's headline claims against measured results.

The paper's abstract and Section 6 make a handful of quantitative claims.
Given the results of a Figure-3/Figure-4 style sweep, this module computes the
corresponding quantities from *our* measurements so EXPERIMENTS.md (and the
test suite) can compare shape: who wins, and by roughly what factor.
"""

from dataclasses import dataclass


@dataclass
class ClaimCheck:
    """One headline claim and what we measured for it."""

    claim: str
    paper_value: str
    measured_value: str
    holds: bool

    def as_row(self):
        return {
            "claim": self.claim,
            "paper": self.paper_value,
            "measured": self.measured_value,
            "holds": "yes" if self.holds else "NO",
        }


def _index(summaries):
    """Index summaries by (method, pattern, layout, record size)."""
    table = {}
    for summary in summaries:
        config = summary.config
        key = (config.method, config.pattern, config.layout, config.record_size)
        table[key] = summary.mean_throughput_mb
    return table


def _pairs(table, layout, methods):
    """Yield (pattern, record_size, tc, ddio) for every case present for both methods."""
    tc_method, ddio_method = methods
    for (method, pattern, this_layout, record_size), value in table.items():
        if method != tc_method or this_layout != layout:
            continue
        other = table.get((ddio_method, pattern, layout, record_size))
        if other is None:
            continue
        yield pattern, record_size, value, other


def check_headline_claims(summaries, peak_disk_bandwidth_mb=37.5):
    """Compute the paper's headline quantities from a set of trial summaries.

    Returns a list of :class:`ClaimCheck`.  Expect the *direction* of every
    claim to hold; absolute factors may differ from the paper since the
    substrate is a re-implementation (see EXPERIMENTS.md).
    """
    table = _index(summaries)
    checks = []

    # Claim 1: DDIO is never substantially slower than traditional caching.
    ratios = []
    for layout in ("contiguous", "random"):
        for _pattern, _rs, tc, ddio in _pairs(
                table, layout, ("traditional", "disk-directed")):
            if tc > 0:
                ratios.append(ddio / tc)
    if ratios:
        worst = min(ratios)
        best = max(ratios)
        checks.append(ClaimCheck(
            claim="DDIO at least as fast as traditional caching (never "
                  "substantially slower)",
            paper_value=">= ~1x everywhere, up to 16.2x",
            measured_value=f"ratio range {worst:.2f}x .. {best:.1f}x",
            holds=worst >= 0.85,
        ))
        checks.append(ClaimCheck(
            claim="DDIO up to an order of magnitude faster in the worst "
                  "traditional-caching cases",
            paper_value="up to 16.2x (contiguous), up to 9.0x (random)",
            measured_value=f"max ratio {best:.1f}x",
            holds=best >= 5.0,
        ))

    # Claim 2: DDIO reaches a large fraction of peak disk bandwidth on the
    # contiguous layout.
    ddio_contiguous = [value for (method, _p, layout, rs), value in table.items()
                       if method == "disk-directed" and layout == "contiguous"
                       and rs == 8192]
    if ddio_contiguous:
        achieved = max(ddio_contiguous)
        fraction = achieved / peak_disk_bandwidth_mb
        checks.append(ClaimCheck(
            claim="DDIO approaches peak disk bandwidth on the contiguous layout",
            paper_value="up to 93% of 37.5 MB/s",
            measured_value=f"{achieved:.1f} MB/s = {fraction:.0%} of peak",
            holds=fraction >= 0.75,
        ))

    # Claim 3: DDIO throughput is nearly independent of the access pattern.
    ddio_random = [value for (method, _p, layout, rs), value in table.items()
                   if method == "disk-directed" and layout == "random" and rs == 8192]
    if len(ddio_random) >= 2:
        spread = (max(ddio_random) - min(ddio_random)) / max(ddio_random)
        checks.append(ClaimCheck(
            claim="DDIO throughput nearly independent of data distribution "
                  "(random layout, 8 KB records)",
            paper_value="consistently 6.2-7.5 MB/s",
            measured_value=f"spread {spread:.0%} across patterns",
            holds=spread <= 0.35,
        ))

    # Claim 4: presorting the block list pays off on the random layout.
    sort_ratios = []
    for (_method, pattern, layout, rs), value in list(table.items()):
        if _method != "disk-directed" or layout != "random":
            continue
        nosort = table.get(("disk-directed-nosort", pattern, layout, rs))
        if nosort:
            sort_ratios.append(value / nosort)
    if sort_ratios:
        mean_ratio = sum(sort_ratios) / len(sort_ratios)
        checks.append(ClaimCheck(
            claim="Presorting disk requests by physical location helps on the "
                  "random layout",
            paper_value="41-50% improvement",
            measured_value=f"mean improvement {mean_ratio - 1:.0%}",
            holds=mean_ratio >= 1.2,
        ))

    # Claim 5: the contiguous layout is several times faster than random.
    contiguous_best = [value for (method, _p, layout, rs), value in table.items()
                       if method == "disk-directed" and layout == "contiguous"]
    random_best = [value for (method, _p, layout, rs), value in table.items()
                   if method == "disk-directed" and layout == "random"]
    if contiguous_best and random_best:
        factor = max(contiguous_best) / max(random_best)
        checks.append(ClaimCheck(
            claim="Contiguous layout several times faster than random-blocks",
            paper_value="about 5x",
            measured_value=f"{factor:.1f}x",
            holds=factor >= 3.0,
        ))

    return checks
