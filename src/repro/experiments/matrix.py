"""The bit-identical differential matrix (77 pinned trials).

PR 5 verified its kernel rework by diffing a 68-trial matrix of full result
objects across both experiment families — but that diff lived offline.  This
module makes the matrix a *committed artifact*: :func:`matrix_trials` is the
fixed trial list, :func:`result_digest` canonicalises one result dataclass to
a sha256, and ``tests/data/disk_matrix_digests.json`` pins every digest.  A
pinned regression test re-runs the matrix on every tier-1 run, so any change
that perturbs even one byte of any existing disk-path result — a refactor, a
new device backend, a "pure mechanics" optimisation — fails loudly with the
exact trials that moved.

The matrix spans both families at deliberately small scale (seconds, not
minutes): single-collective patterns x methods x layouts x record sizes x
drive/IOP schedulers x seeds, and service streams covering arrivals, record
mixes, heavy-tailed sizes, write-heavy mixes, streaming mode, the admission
policies, and every fault scenario class.  Digests are over the *entire*
``asdict(result)`` payload — counters, sketches, fault envelopes — not just
headline numbers, so "bit-identical" means exactly that.

Regenerate (only when a model change is intended and understood)::

    PYTHONPATH=src python -m repro.experiments.matrix --write

Check (what the pinned test does)::

    PYTHONPATH=src python -m repro.experiments.matrix
"""

import argparse
import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_trial
from repro.experiments.service import ServiceExperimentConfig

#: Where the pinned digests live (committed; read by the regression test).
DIGEST_PATH = (Path(__file__).resolve().parents[3]
               / "tests" / "data" / "disk_matrix_digests.json")

#: Small-scale shapes shared across the matrix: big enough to exercise
#: multi-disk striping and real queueing, small enough that the whole
#: matrix runs in seconds inside the tier-1 suite.
_SINGLE = dict(n_cps=4, n_iops=2, n_disks=2, file_size=128 * 1024,
               layout="random", record_size=8192)
_SERVICE = dict(n_cps=2, n_iops=2, n_disks=2, n_requests=6, n_files=3,
                file_size=128 * 1024, concurrency=2)

_METHODS = ("disk-directed", "traditional-caching")


def _single(label, **overrides):
    fields = dict(_SINGLE)
    fields.update(overrides)
    return ExperimentConfig(label=label, **fields)


def _service(label, **overrides):
    fields = dict(_SERVICE)
    fields.update(overrides)
    return ServiceExperimentConfig(label=label, **fields)


def matrix_trials():
    """The fixed trial list: ``[(key, config, seed), ...]`` — 77 entries.

    Keys are human-readable (``label#s<seed>``) and stable: they name trials
    in the pinned JSON so a digest mismatch points at the exact trial that
    moved, not an opaque hash.  Append-only by convention — removing or
    reordering entries would silently shrink the differential's coverage.
    """
    trials = []

    def add(config, seed=1):
        trials.append((f"{config.label}#s{seed}", config, seed))

    # -- single-collective family ------------------------------------------
    # Pattern coverage x both methods: ALL, 1-D, 2-D, reads and writes.
    for pattern in ("ra", "rb", "rc", "rnb", "rcc", "wb", "wc", "wcb"):
        for method in _METHODS:
            add(_single(f"{method}:{pattern}", method=method, pattern=pattern))
    # Extra pattern corners, disk-directed only (TC shares the code paths).
    for pattern in ("rn", "rbb", "rcn", "wn", "wcc", "wbc"):
        add(_single(f"disk-directed:{pattern}", pattern=pattern))
    for pattern in ("rn", "wn"):
        add(_single(f"traditional-caching:{pattern}",
                    method="traditional-caching", pattern=pattern))
    # Contiguous layout (the paper's best case) x both methods, read + write.
    for method in _METHODS:
        for pattern in ("rb", "wb"):
            add(_single(f"{method}:{pattern}:contig", method=method,
                        pattern=pattern, layout="contiguous"))
    # Small records stress the per-record protocol paths.
    for method in _METHODS:
        add(_single(f"{method}:rb:rs1024", method=method, pattern="rb",
                    record_size=1024))
    # Drive-queue and cross-collective IOP scheduling policies.
    for scheduler in ("sstf", "cscan", "shared-cscan", "shared-fcfs"):
        add(_single(f"disk-directed:rb:{scheduler}", pattern="rb",
                    disk_scheduler=scheduler))
    add(_single("traditional-caching:rb:shared-cscan",
                method="traditional-caching", pattern="rb",
                disk_scheduler="shared-cscan"))
    # A second seed on the core cells: placement + rotation re-draw.
    for method in _METHODS:
        add(_single(f"{method}:rb", method=method, pattern="rb"), seed=2)
    add(_single("disk-directed:wb", pattern="wb"), seed=2)

    # -- service family ----------------------------------------------------
    # Arrival processes x both methods.
    for method in _METHODS:
        add(_service(f"svc:{method}:poisson", method=method,
                     arrival="poisson", arrival_rate=8.0))
        add(_service(f"svc:{method}:closed", method=method,
                     arrival="closed", think_time=0.01))
    # Closed loop with exponential think times.
    for method in _METHODS:
        add(_service(f"svc:{method}:expthink", method=method,
                     arrival="closed", think_time=0.02,
                     exponential_think=True))
    # The paper's 8-byte worst case mixed into the stream.
    for method in _METHODS:
        add(_service(f"svc:{method}:mix8", method=method,
                     record_sizes=(8, 8192)))
    # Heavy-tailed per-file sizes.
    for method in _METHODS:
        add(_service(f"svc:{method}:pareto", method=method,
                     size_distribution="pareto"))
    add(_service("svc:disk-directed:lognormal",
                 size_distribution="lognormal"))
    # Cross-collective shared elevators.
    for method in _METHODS:
        add(_service(f"svc:{method}:shared", method=method,
                     disk_scheduler="shared-cscan"))
    # Write-heavy and read-only mixes.
    for method in _METHODS:
        add(_service(f"svc:{method}:writes", method=method,
                     read_fraction=0.0))
    add(_service("svc:disk-directed:reads", read_fraction=1.0))
    # Constant-memory streaming mode (sketch-only percentiles).
    for method in _METHODS:
        add(_service(f"svc:{method}:streaming", method=method,
                     streaming=True))
    # Admission policies + the adaptive-K controller.
    add(_service("svc:disk-directed:sjf", admission_policy="sjf"))
    add(_service("svc:traditional-caching:sjf",
                 method="traditional-caching", admission_policy="sjf"))
    add(_service("svc:disk-directed:edf", admission_policy="edf",
                 deadline_slack=2.0))
    add(_service("svc:disk-directed:priority", admission_policy="priority",
                 priority_levels=2))
    add(_service("svc:disk-directed:controller",
                 controller_target_p99=2.0, controller_interval=0.25))
    # Every fault scenario class (deterministic per-(seed, disk) plans).
    for method in _METHODS:
        add(_service(f"svc:{method}:transient", method=method,
                     fault_transient_rate=0.05))
    add(_service("svc:disk-directed:badrange", fault_bad_ranges=1))
    add(_service("svc:disk-directed:failstop", fault_fail_stop_disk=0,
                 fault_fail_stop_time=0.05, on_fault="degrade"))
    add(_service("svc:disk-directed:failslow", fault_slow_factor=4.0,
                 fault_slow_disk=0, fault_slow_start=0.0,
                 fault_slow_duration=1.0))
    # A second seed on the core service cells.
    for method in _METHODS:
        add(_service(f"svc:{method}:poisson", method=method,
                     arrival="poisson", arrival_rate=8.0), seed=2)

    # -- parity redundancy + end-to-end integrity (appended; the 68 trials
    # above pin the redundancy="none" path bit-identical) ------------------
    # Declustered parity on the healthy path (parity needs >= 3 drives).
    for method in _METHODS:
        add(_single(f"{method}:rb:parity", method=method, pattern="rb",
                    n_disks=4, redundancy="parity"))
    add(_single("disk-directed:wb:parity", pattern="wb", n_disks=4,
                redundancy="parity"))
    # Fail-stop under parity: degraded reads + the online rebuild stream.
    for method in _METHODS:
        add(_service(f"svc:{method}:parity-failstop", method=method,
                     n_disks=4, redundancy="parity",
                     rebuild_bandwidth=2.0 * 1024 * 1024,
                     fault_fail_stop_disk=0, fault_fail_stop_time=0.05))
    # Silent corruption over the whole drive (sectors >= capacity pins the
    # range to the full LBN span): undetected, detected, detected+repaired.
    add(_service("svc:disk-directed:silent", fault_silent_ranges=1,
                 fault_silent_range_sectors=10 ** 9))
    add(_service("svc:disk-directed:silent-chk", fault_silent_ranges=1,
                 fault_silent_range_sectors=10 ** 9, checksums=True,
                 on_fault="degrade"))
    add(_service("svc:disk-directed:silent-chk-parity", n_disks=4,
                 redundancy="parity", checksums=True, fault_silent_ranges=1,
                 fault_silent_range_sectors=10 ** 9))
    # One corrupt drive only: clean survivors, so parity repairs every
    # detected read instead of giving the stripe up.
    add(_service("svc:disk-directed:silent-disk0-repair", n_disks=4,
                 redundancy="parity", checksums=True, fault_silent_ranges=1,
                 fault_silent_range_sectors=10 ** 9, fault_silent_disk=0))

    keys = [key for key, _, _ in trials]
    if len(set(keys)) != len(keys):
        raise AssertionError("matrix trial keys must be unique")
    return trials


def result_digest(result):
    """Canonical sha256 over a result dataclass's *entire* payload.

    Same canonical-JSON form as the result cache (sorted keys, no
    whitespace); the result type participates so two families cannot
    collide.  Any float that differs in its last bit changes the digest —
    that is the point.
    """
    payload = asdict(result)
    payload["result_type"] = type(result).__name__
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=list)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_matrix(progress=None):
    """Run every matrix trial; returns ``{key: digest}`` in trial order."""
    digests = {}
    trials = matrix_trials()
    for index, (key, config, seed) in enumerate(trials):
        digests[key] = result_digest(run_trial(config, seed=seed))
        if progress is not None:
            progress(index, len(trials), key)
    return digests


def load_pinned(path=DIGEST_PATH):
    """The committed digests, ``{key: digest}``."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare(current, pinned):
    """Human-readable mismatch lines (empty list == bit-identical)."""
    lines = []
    for key in pinned:
        if key not in current:
            lines.append(f"missing trial: {key}")
        elif current[key] != pinned[key]:
            lines.append(f"digest moved: {key}")
    for key in current:
        if key not in pinned:
            lines.append(f"unpinned trial: {key}")
    return lines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write", action="store_true",
                        help="regenerate the pinned digest file in place "
                             "(only when a model change is intended)")
    parser.add_argument("--path", default=str(DIGEST_PATH),
                        help="digest file to write/check")
    args = parser.parse_args(argv)

    def progress(index, total, key):
        print(f"[{index + 1:2d}/{total}] {key}")

    digests = run_matrix(progress=progress)
    path = Path(args.path)
    if args.write:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(digests, handle, indent=1, sort_keys=False)
            handle.write("\n")
        print(f"wrote {len(digests)} digests to {path}")
        return 0
    mismatches = compare(digests, load_pinned(path))
    if mismatches:
        for line in mismatches:
            print(line)
        return 1
    print(f"all {len(digests)} trial digests bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
