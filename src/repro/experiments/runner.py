"""Run experiments: build the machine, the file and the pattern, then transfer."""

from repro.core import make_filesystem
from repro.experiments.config import ExperimentConfig, TrialSummary
from repro.fs import FileSystem
from repro.machine import Machine, MachineConfig
from repro.patterns import make_pattern


def build_machine_config(config):
    """Translate an :class:`ExperimentConfig` into a :class:`MachineConfig`."""
    return MachineConfig(
        n_cps=config.n_cps,
        n_iops=config.n_iops,
        n_disks=config.n_disks,
        block_size=config.block_size,
    )


def run_experiment(config, seed=None):
    """Run one trial of *config* and return its :class:`TransferResult`.

    The trial seed controls the random-blocks placement, the initial
    rotational position of every platter, and nothing else.
    """
    if not isinstance(config, ExperimentConfig):
        raise TypeError(f"expected ExperimentConfig, got {type(config).__name__}")
    trial_seed = config.seed if seed is None else seed
    machine_config = build_machine_config(config)
    machine = Machine(machine_config, seed=trial_seed)
    filesystem = FileSystem(machine_config, layout_seed=trial_seed)
    striped_file = filesystem.create_file(
        "experiment-file", config.file_size, layout=config.layout)
    pattern = make_pattern(
        config.pattern, config.file_size, config.record_size, config.n_cps)
    implementation = make_filesystem(config.method, machine, striped_file)
    return implementation.transfer(pattern)


def run_trials(config, trials=5, base_seed=None):
    """Replicate *config* over independent trials (the paper uses five)."""
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    first_seed = config.seed if base_seed is None else base_seed
    summary = TrialSummary(config=config)
    for trial in range(trials):
        summary.results.append(run_experiment(config, seed=first_seed + trial))
    return summary


def sweep(configs, trials=1, base_seed=None, progress=None):
    """Run a list of configurations; returns a list of :class:`TrialSummary`.

    *progress*, if given, is called with ``(index, total, summary)`` after each
    configuration finishes — handy for long command-line sweeps.
    """
    summaries = []
    total = len(configs)
    for index, config in enumerate(configs):
        summary = run_trials(config, trials=trials, base_seed=base_seed)
        summaries.append(summary)
        if progress is not None:
            progress(index, total, summary)
    return summaries
