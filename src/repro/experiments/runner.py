"""Run experiments: build the machine, the file and the pattern, then transfer.

Besides the serial :func:`sweep`, this module provides :func:`sweep_parallel`
(same results, fanned out over a process pool with deterministic per-trial
seeds) and :class:`ResultCache`, an on-disk JSON cache of single-trial results
keyed by a stable hash of the configuration, so regenerating figures is
incremental: only data points whose configuration changed are re-simulated.
"""

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict
from pathlib import Path

from repro.core import make_filesystem
from repro.core.result import TransferResult
from repro.experiments.config import ExperimentConfig, TrialSummary
from repro.fs import FileSystem
from repro.machine import Machine, MachineConfig
from repro.patterns import make_pattern

#: Bump to invalidate every cache entry when a model change alters results.
CACHE_SCHEMA_VERSION = 1


def build_machine_config(config):
    """Translate an :class:`ExperimentConfig` into a :class:`MachineConfig`."""
    return MachineConfig(
        n_cps=config.n_cps,
        n_iops=config.n_iops,
        n_disks=config.n_disks,
        block_size=config.block_size,
    )


def run_experiment(config, seed=None):
    """Run one trial of *config* and return its :class:`TransferResult`.

    The trial seed controls the random-blocks placement, the initial
    rotational position of every platter, and nothing else.
    """
    if not isinstance(config, ExperimentConfig):
        raise TypeError(f"expected ExperimentConfig, got {type(config).__name__}")
    trial_seed = config.seed if seed is None else seed
    machine_config = build_machine_config(config)
    machine = Machine(machine_config, seed=trial_seed)
    filesystem = FileSystem(machine_config, layout_seed=trial_seed)
    striped_file = filesystem.create_file(
        "experiment-file", config.file_size, layout=config.layout)
    pattern = make_pattern(
        config.pattern, config.file_size, config.record_size, config.n_cps)
    implementation = make_filesystem(config.method, machine, striped_file)
    return implementation.transfer(pattern)


# -- result caching ------------------------------------------------------------

def trial_cache_key(config, seed):
    """Stable content hash identifying one (configuration, trial seed) result.

    The ``label`` field is cosmetic and the ``seed`` field is superseded by
    the effective trial seed, so neither participates in the key.
    """
    payload = asdict(config)
    payload.pop("label", None)
    payload.pop("seed", None)
    payload["trial_seed"] = seed
    payload["schema"] = CACHE_SCHEMA_VERSION
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class ResultCache:
    """On-disk cache of single-trial :class:`TransferResult` objects.

    One JSON file per trial, named by :func:`trial_cache_key`.  Writes go
    through a temp file + atomic rename so concurrent sweeps sharing a cache
    directory never observe torn entries.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key):
        return self.directory / f"{key}.json"

    def get(self, key):
        """The cached :class:`TransferResult` for *key*, or ``None``.

        Unreadable, corrupt, or stale-schema entries (e.g. written before a
        field was added to :class:`TransferResult`) degrade to a miss and are
        re-simulated rather than crashing the sweep.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            result = TransferResult(**data)
        except (FileNotFoundError, json.JSONDecodeError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key, result):
        """Persist *result* under *key*."""
        data = asdict(result)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(data, handle)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def clear(self):
        """Delete every cached entry."""
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)


def _as_cache(cache):
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# -- trial running --------------------------------------------------------------

def run_trials(config, trials=5, base_seed=None, cache=None):
    """Replicate *config* over independent trials (the paper uses five)."""
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    cache = _as_cache(cache)
    first_seed = config.seed if base_seed is None else base_seed
    summary = TrialSummary(config=config)
    for trial in range(trials):
        seed = first_seed + trial
        result = None
        key = None
        if cache is not None:
            key = trial_cache_key(config, seed)
            result = cache.get(key)
        if result is None:
            result = run_experiment(config, seed=seed)
            if cache is not None:
                cache.put(key, result)
        summary.results.append(result)
    return summary


def sweep(configs, trials=1, base_seed=None, progress=None, cache=None):
    """Run a list of configurations; returns a list of :class:`TrialSummary`.

    *progress*, if given, is called with ``(index, total, summary)`` after each
    configuration finishes — handy for long command-line sweeps.
    """
    cache = _as_cache(cache)
    summaries = []
    total = len(configs)
    for index, config in enumerate(configs):
        summary = run_trials(config, trials=trials, base_seed=base_seed,
                             cache=cache)
        summaries.append(summary)
        if progress is not None:
            progress(index, total, summary)
    return summaries


def _run_trial_job(job):
    """Top-level worker so :class:`ProcessPoolExecutor` can pickle it."""
    config, seed = job
    return run_experiment(config, seed=seed)


def sweep_parallel(configs, trials=1, base_seed=None, workers=None,
                   cache=None, progress=None):
    """:func:`sweep`, fanned out over a process pool.

    Produces exactly the same :class:`TrialSummary` list as the serial sweep:
    every trial's seed is a pure function of its configuration and position
    (``base_seed + trial``, as in :func:`run_trials`), and the simulator is
    deterministic given a seed, so the fan-out is unobservable in the results.

    *workers* ``None``/``0``/``1`` delegates to the serial :func:`sweep`
    (still using *cache*); otherwise a pool of that many processes serves the
    cache misses.  Cached trials are never resubmitted, which is what makes
    figure regeneration incremental.  *progress* fires as each configuration
    completes, in configuration order, just as in the serial sweep.
    """
    cache = _as_cache(cache)
    configs = list(configs)
    if not (workers and workers > 1):
        return sweep(configs, trials=trials, base_seed=base_seed,
                     progress=progress, cache=cache)
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    total = len(configs)

    # One slot per (config, trial); filled from cache or from the pool.
    results = [[None] * trials for _ in configs]
    pending = [0] * total    # uncached trials per config, counted down below
    jobs = []                # (config_index, trial_index, (config, seed))
    for config_index, config in enumerate(configs):
        first_seed = config.seed if base_seed is None else base_seed
        for trial in range(trials):
            seed = first_seed + trial
            if cache is not None:
                cached = cache.get(trial_cache_key(config, seed))
                if cached is not None:
                    results[config_index][trial] = cached
                    continue
            pending[config_index] += 1
            jobs.append((config_index, trial, (config, seed)))

    summaries = [None] * total
    emitted = 0

    def emit_completed():
        # Jobs are config-major and pool.map preserves order, so configs
        # finish in index order; stream each one's summary as it completes.
        nonlocal emitted
        while emitted < total and pending[emitted] == 0:
            summary = TrialSummary(config=configs[emitted],
                                   results=results[emitted])
            summaries[emitted] = summary
            if progress is not None:
                progress(emitted, total, summary)
            emitted += 1

    emit_completed()  # configs served entirely from cache
    if jobs:
        chunksize = max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            fresh = pool.map(_run_trial_job, [job for _, _, job in jobs],
                             chunksize=chunksize)
            for (config_index, trial, job), result in zip(jobs, fresh):
                results[config_index][trial] = result
                if cache is not None:
                    cache.put(trial_cache_key(job[0], job[1]), result)
                pending[config_index] -= 1
                emit_completed()
    return summaries
