"""Run experiments: build the machine, the file and the pattern, then transfer.

Besides the serial :func:`sweep`, this module provides :func:`sweep_parallel`
(same results, fanned out over a process pool with deterministic per-trial
seeds) and :class:`ResultCache`, an on-disk JSON cache of single-trial results
keyed by a stable hash of the configuration, so regenerating figures is
incremental: only data points whose configuration changed are re-simulated.

The sweep machinery is generic over *experiment families*: a family is a
frozen config dataclass plus a ``run(config, seed)`` function, registered via
:func:`register_experiment_family`.  The paper's single-collective family
(:class:`ExperimentConfig` -> :class:`TransferResult`) registers itself below;
the service-style family lives in :mod:`repro.experiments.service`.
"""

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict
from pathlib import Path

from repro.core import make_filesystem
from repro.core.result import TransferResult
from repro.experiments.config import ExperimentConfig, TrialSummary
from repro.fs import FileSystem
from repro.machine import Machine, MachineConfig
from repro.patterns import make_pattern

#: Bump to invalidate every cache entry when a model change alters results.
#: CI guards this: a change under the simulation model's source trees without
#: a bump here fails the schema-guard job (tools/check_schema_bump.py).
#:
#: 2 — cache entries grew a self-describing envelope (schema + result type);
#:     per-session counters replaced lifetime counters in TransferResult;
#:     traditional-caching writes now account bytes_moved.
#: 3 — cross-collective IOP scheduling (``disk_scheduler`` joined both
#:     config families and the cache key); TransferResult.counters became
#:     per-session (tagged disk service time / bus share replaced
#:     machine-cumulative stats); traditional caching drains per-session
#:     write-behind to the media instead of a machine-wide cache+disk flush.
#: 4 — overload-scale service study: heavy-tailed per-file sizes
#:     (``size_distribution``/``size_alpha``/``size_sigma``/``max_file_size``),
#:     per-request record-size mixes (``record_sizes``) and the shared-queue
#:     worker-pool knob (``shared_queue_workers``) joined the service config
#:     and cache key; traditional caching's per-record request streams are
#:     now simulator-batched per (CP, block) — same modeled CPU/DMA/header
#:     costs, collapsed event round-trips — and uncontended Resource grants
#:     are synchronous, both of which shift simulated timings slightly.
#: 5 — two-tier event calendar + device delay fusion (PR 5).  Pure simulator
#:     mechanics: results were verified bit-identical across both experiment
#:     families (the docs/data artifacts regenerate unchanged), so this bump
#:     is precautionary — the schema guard cannot distinguish a mechanics
#:     refactor from a model change, and a wasted cache fill is cheaper than
#:     a silently stale figure.
#: 6 — fault injection (PR 6).  ServiceExperimentConfig grew fault fields
#:     (all-defaults == healthy, verified bit-identical) and ServiceResult
#:     records grew per-request fault counters; cached envelopes from
#:     schema 5 lack those keys, so they must not be replayed.
#: 7 — constant-memory streaming driver (PR 7).  ServiceResult percentiles
#:     moved from sorted record lists to mergeable quantile sketches
#:     (``response_sketch``/``service_sketch``/``aggregates`` fields;
#:     ``retain_requests``/``streaming`` joined the service config and cache
#:     key), and cache entries grew a ``content_hash`` integrity stamp for
#:     the shared multi-host store; schema-6 envelopes lack all of these.
#: v8: the admission layer landed — ``ServiceResult`` grew ``admission``,
#:     ``controller`` and ``class_sketches`` fields plus drop/shed
#:     aggregates, and the service config grew the admission/controller
#:     knobs; schema-7 envelopes lack all of these.
#: v9: the flash backend landed — ``device`` joined both config families
#:     (and hence every cache key).  Disk results are bit-identical (the
#:     68-trial matrix of repro.experiments.matrix pins this), but schema-8
#:     envelopes were keyed without the device axis and must not be
#:     replayed against keys that now include it.
#: v10: the redundancy layer landed — ``redundancy`` joined both config
#:     families (plus ``checksums``/``rebuild_bandwidth`` and the
#:     silent-corruption fault knobs on the service side, all defaulting
#:     off).  ``redundancy="none"`` results are bit-identical (the digest
#:     matrix pins this), but schema-9 envelopes were keyed without the
#:     redundancy axis and must not be replayed against keys that include
#:     it.
CACHE_SCHEMA_VERSION = 10


# -- experiment families --------------------------------------------------------

#: config type -> run function (config, seed) -> result dataclass
_TRIAL_RUNNERS = {}
#: result type name -> result class, for cache reconstruction
_RESULT_TYPES = {}


def register_experiment_family(config_type, run_fn, result_type):
    """Teach the sweep/cache machinery about a new experiment family.

    *config_type* must be a (frozen) dataclass with ``seed`` and ``label``
    fields; *run_fn(config, seed)* runs one trial; *result_type* is the
    dataclass ``run_fn`` returns (reconstructed from cached JSON as
    ``result_type(**fields)``).
    """
    _TRIAL_RUNNERS[config_type] = run_fn
    _RESULT_TYPES[result_type.__name__] = result_type


def run_trial(config, seed=None):
    """Run one trial of *config*, dispatching on its experiment family."""
    run_fn = _TRIAL_RUNNERS.get(type(config))
    if run_fn is None:
        raise TypeError(
            f"{type(config).__name__} is not a registered experiment family "
            f"(known: {sorted(cls.__name__ for cls in _TRIAL_RUNNERS)})")
    return run_fn(config, seed)


def build_machine_config(config):
    """Translate an :class:`ExperimentConfig` into a :class:`MachineConfig`."""
    return MachineConfig(
        n_cps=config.n_cps,
        n_iops=config.n_iops,
        n_disks=config.n_disks,
        block_size=config.block_size,
    )


def run_experiment(config, seed=None):
    """Run one trial of *config* and return its :class:`TransferResult`.

    The trial seed controls the random-blocks placement, the initial
    rotational position of every platter, and nothing else.
    """
    if not isinstance(config, ExperimentConfig):
        raise TypeError(f"expected ExperimentConfig, got {type(config).__name__}")
    trial_seed = config.seed if seed is None else seed
    machine_config = build_machine_config(config)
    machine = Machine(machine_config, seed=trial_seed,
                      disk_scheduler=config.disk_scheduler,
                      device=config.device,
                      redundancy=config.redundancy)
    filesystem = FileSystem(machine_config, layout_seed=trial_seed,
                            redundancy=config.redundancy)
    striped_file = filesystem.create_file(
        "experiment-file", config.file_size, layout=config.layout)
    if machine.parity is not None:
        machine.parity.register_file(striped_file)
    pattern = make_pattern(
        config.pattern, config.file_size, config.record_size, config.n_cps)
    implementation = make_filesystem(config.method, machine, striped_file)
    return implementation.transfer(pattern)


register_experiment_family(ExperimentConfig, run_experiment, TransferResult)


# -- result caching ------------------------------------------------------------

def trial_cache_key(config, seed):
    """Stable content hash identifying one (configuration, trial seed) result.

    The ``label`` field is cosmetic and the ``seed`` field is superseded by
    the effective trial seed, so neither participates in the key.  The config
    type participates, so two families whose configs happen to share field
    values can never collide.
    """
    payload = asdict(config)
    payload.pop("label", None)
    payload.pop("seed", None)
    payload["config_type"] = type(config).__name__
    payload["trial_seed"] = seed
    payload["schema"] = CACHE_SCHEMA_VERSION
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=list)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _payload_hash(fields):
    """Canonical content hash of a result's fields (envelope excluded)."""
    blob = json.dumps(fields, sort_keys=True, separators=(",", ":"),
                      default=list)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed shared store of single-trial result objects.

    One JSON file per trial, named by :func:`trial_cache_key` and sharded
    into 256 two-hex-digit subdirectories (a million-trial sweep must not
    produce a million-entry flat directory).  Entries are self-describing:
    alongside the result's fields they carry a ``schema`` stamp, the
    ``result_type`` to reconstruct, and a ``content_hash`` over the result
    payload, verified on every read.

    The store is safe to *share* — between the processes of one parallel
    sweep and between N hosts cooperating on one figure over a shared
    directory (NFS or synced):

    * Writes go through a temp file + atomic rename, so readers never
      observe torn entries and racing writers of the same key leave one
      complete entry (the key is a pure function of the config and seed, so
      both writers carry identical bytes of meaning).
    * Reads verify ``content_hash``; an entry corrupted in transit or on a
      shared filesystem degrades to a counted miss (``corrupt``) instead of
      poisoning a figure.
    * Entries whose ``schema`` differs from :data:`CACHE_SCHEMA_VERSION`
      are rejected and counted in ``stale`` — hosts running different model
      versions can share a directory without serving each other stale
      results.
    """

    #: entry keys reserved for the envelope (never result dataclass fields)
    _ENVELOPE_KEYS = ("schema", "result_type", "content_hash")

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: entries rejected because their schema stamp is not current
        self.stale = 0
        #: entries rejected because their content hash did not verify
        self.corrupt = 0

    def _path(self, key):
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key):
        """The cached result object for *key*, or ``None``.

        Unreadable or corrupt entries degrade to a miss (hash failures are
        additionally counted in ``corrupt``).  Entries whose ``schema``
        stamp differs from :data:`CACHE_SCHEMA_VERSION` (including
        pre-envelope entries with no stamp at all) are *rejected* — a model
        change must never serve stale figures — and counted in ``stale``.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(data, dict) \
                or data.get("schema") != CACHE_SCHEMA_VERSION:
            self.stale += 1
            self.misses += 1
            return None
        result_class = _RESULT_TYPES.get(data.get("result_type"))
        fields = {name: value for name, value in data.items()
                  if name not in self._ENVELOPE_KEYS}
        if data.get("content_hash") != _payload_hash(fields):
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            result = result_class(**fields)
        except TypeError:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key, result):
        """Persist *result* under *key* (schema + type + hash envelope).

        Atomic (temp file + rename): a concurrent reader sees either nothing
        or a complete, hash-verified entry, never a prefix.
        """
        fields = asdict(result)
        data = dict(fields)
        data["schema"] = CACHE_SCHEMA_VERSION
        data["result_type"] = type(result).__name__
        data["content_hash"] = _payload_hash(fields)
        shard = self.directory / key[:2]
        shard.mkdir(parents=True, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=shard, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(data, handle)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def clear(self):
        """Delete every cached entry (sharded and legacy flat layout)."""
        for pattern in ("*.json", "??/*.json"):
            for path in self.directory.glob(pattern):
                path.unlink(missing_ok=True)


def _as_cache(cache):
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# -- trial running --------------------------------------------------------------

def run_trials(config, trials=5, base_seed=None, cache=None):
    """Replicate *config* over independent trials (the paper uses five)."""
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    cache = _as_cache(cache)
    first_seed = config.seed if base_seed is None else base_seed
    summary = TrialSummary(config=config)
    for trial in range(trials):
        seed = first_seed + trial
        result = None
        key = None
        if cache is not None:
            key = trial_cache_key(config, seed)
            result = cache.get(key)
        if result is None:
            result = run_trial(config, seed=seed)
            if cache is not None:
                cache.put(key, result)
        summary.results.append(result)
    return summary


def sweep(configs, trials=1, base_seed=None, progress=None, cache=None):
    """Run a list of configurations; returns a list of :class:`TrialSummary`.

    *progress*, if given, is called with ``(index, total, summary)`` after each
    configuration finishes — handy for long command-line sweeps.
    """
    cache = _as_cache(cache)
    summaries = []
    total = len(configs)
    for index, config in enumerate(configs):
        summary = run_trials(config, trials=trials, base_seed=base_seed,
                             cache=cache)
        summaries.append(summary)
        if progress is not None:
            progress(index, total, summary)
    return summaries


def _run_trial_job(job):
    """Top-level worker so :class:`ProcessPoolExecutor` can pickle it."""
    config, seed = job
    return run_trial(config, seed=seed)


def trial_cost_estimate(config):
    """Rough relative wall-clock cost of one trial, for dispatch ordering only.

    Trial costs in one sweep can span two orders of magnitude: a paper-scale
    traditional-caching point with 8-byte records is ~100x costlier to
    simulate than its disk-directed sibling (per-record request streams),
    and service configs multiply by the request count.  Dispatching
    longest-first with one job per pool task (work stealing) keeps such
    stragglers from serialising the tail of a parallel sweep.

    The estimate is a heuristic over fields common to the experiment
    families; it influences *scheduling order only* — results are identical
    for any order.
    """
    bytes_per_trial = getattr(config, "file_size", 1 << 20) \
        * max(1, getattr(config, "n_requests", 1))
    record_sizes = tuple(getattr(config, "record_sizes", ()) or ()) \
        or (getattr(config, "record_size", 8192),)
    smallest_record = max(1, min(record_sizes))
    cost = float(bytes_per_trial)
    if str(getattr(config, "method", "")).startswith("traditional") \
            and smallest_record < 4096:
        # Per-record request streams: even simulator-batched, small records
        # multiply the CP/IOP protocol work per block.
        cost *= 4096 / smallest_record
    return cost


def sweep_parallel(configs, trials=1, base_seed=None, workers=None,
                   cache=None, progress=None):
    """:func:`sweep`, fanned out over a process pool.

    Produces exactly the same :class:`TrialSummary` list as the serial sweep:
    every trial's seed is a pure function of its configuration and position
    (``base_seed + trial``, as in :func:`run_trials`), every *request's*
    randomness inside a service trial is a pure function of (trial seed,
    request index), and the simulator is deterministic given a seed, so the
    fan-out is unobservable in the results.

    *workers* ``None``/``0``/``1`` delegates to the serial :func:`sweep`
    (still using *cache*); otherwise a pool of that many processes serves the
    cache misses.  Cached trials are never resubmitted, which is what makes
    figure regeneration incremental.  *progress* fires as each configuration
    completes, in configuration order, just as in the serial sweep.

    Dispatch is cost-ordered work stealing: uncached trials are submitted
    longest-first (see :func:`trial_cost_estimate`) as individual pool tasks
    (chunksize 1), so a sweep mixing ~100x-costlier trials (paper-scale
    8-byte traditional-caching points next to disk-directed ones) does not
    strand its stragglers behind a static chunk split.  Scheduling order is
    unobservable in the results.
    """
    cache = _as_cache(cache)
    configs = list(configs)
    if not (workers and workers > 1):
        return sweep(configs, trials=trials, base_seed=base_seed,
                     progress=progress, cache=cache)
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    total = len(configs)

    # One slot per (config, trial); filled from cache or from the pool.
    results = [[None] * trials for _ in configs]
    pending = [0] * total    # uncached trials per config, counted down below
    jobs = []                # (config_index, trial_index, (config, seed))
    for config_index, config in enumerate(configs):
        first_seed = config.seed if base_seed is None else base_seed
        for trial in range(trials):
            seed = first_seed + trial
            if cache is not None:
                cached = cache.get(trial_cache_key(config, seed))
                if cached is not None:
                    results[config_index][trial] = cached
                    continue
            pending[config_index] += 1
            jobs.append((config_index, trial, (config, seed)))

    summaries = [None] * total
    emitted = 0

    def emit_completed():
        # Results arrive in arbitrary order (longest-first dispatch +
        # as_completed); the pending[] countdown is what guarantees each
        # config's summary streams in configuration order, once complete.
        nonlocal emitted
        while emitted < total and pending[emitted] == 0:
            summary = TrialSummary(config=configs[emitted],
                                   results=results[emitted])
            summaries[emitted] = summary
            if progress is not None:
                progress(emitted, total, summary)
            emitted += 1

    emit_completed()  # configs served entirely from cache
    if jobs:
        # Longest-first, one task per trial: the pool steals work as it
        # drains, so heterogeneous trial costs cannot strand the sweep's
        # tail behind one straggler chunk.
        order = sorted(range(len(jobs)),
                       key=lambda index: trial_cost_estimate(jobs[index][2][0]),
                       reverse=True)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_trial_job, jobs[index][2]): index
                       for index in order}
            for future in as_completed(futures):
                config_index, trial, job = jobs[futures[future]]
                result = future.result()
                results[config_index][trial] = result
                if cache is not None:
                    cache.put(trial_cache_key(job[0], job[1]), result)
                pending[config_index] -= 1
                emit_completed()
    return summaries
