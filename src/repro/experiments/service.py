"""The ``service`` experiment family: concurrent collectives vs offered load.

The paper's figures each time one collective in isolation.  This family
drives the service-style workload of :mod:`repro.workload` — a stream of
mixed read/write collectives over several open files, K admitted at a time —
and plots sustained throughput and response-time percentiles against offered
load, DDIO vs traditional caching.  It is the north-star scenario: a parallel
file *server* under heavy concurrent traffic.

The family plugs into the generic sweep machinery of
:mod:`repro.experiments.runner` (serial/parallel sweeps, on-disk result
cache), so ``ddio-figures service --workers 4 --cache DIR`` works exactly
like the paper figures.
"""

from dataclasses import dataclass

from repro.disk.faults import FaultConfig
from repro.experiments.config import MEGABYTE
from repro.experiments.report import format_series_table, format_table
from repro.experiments.runner import register_experiment_family
from repro.machine import MachineConfig
from repro.workload.driver import ServiceResult, ServiceWorkload, run_service

KILOBYTE = 1024

#: Offered loads (requests/second) swept by the default service figure.
#: At the default scale (32 x 1 MB collectives, paper machine) the server
#: saturates around 8-9 requests/second, so the sweep spans under-load,
#: saturation and over-load.  The 16-file working set (16 MB) deliberately
#: exceeds the traditional IOP caches (4 MB aggregate) — a server under heavy
#: traffic from many jobs does not fit its working set in cache.
DEFAULT_LOADS = (4.0, 8.0, 16.0)

#: Methods compared by the default service figure.
SERVICE_METHODS = ("disk-directed", "traditional")

#: Wall-clock seconds without simulated progress before a fault-injected
#: trial is declared wedged (a diagnosable DeadlockError, not a hang).
FAULT_WATCHDOG = 120.0


@dataclass(frozen=True)
class ServiceExperimentConfig:
    """One data point: a method driven by one service workload on one machine."""

    method: str = "disk-directed"
    arrival: str = "poisson"
    arrival_rate: float = 8.0
    think_time: float = 0.0
    exponential_think: bool = False
    concurrency: int = 4
    n_requests: int = 32
    n_files: int = 16
    file_size: int = MEGABYTE
    layout: str = "random"
    read_fraction: float = 0.7
    file_assignment: str = "round-robin"
    pattern_specs: tuple = ("b", "c")
    record_size: int = 8192
    #: record-size mix: each request draws uniformly from this tuple
    #: (empty: every request uses ``record_size``).  ``(8, 8192)`` mixes the
    #: paper's 8-byte worst case into the stream.
    record_sizes: tuple = ()
    #: per-file size distribution: "fixed", "pareto" or "lognormal"
    #: (heavy-tailed with mean ``file_size``; see repro.workload.sizes)
    size_distribution: str = "fixed"
    size_alpha: float = 1.5
    size_sigma: float = 1.0
    #: cap on one heavy-tailed size draw (0: 16x the mean)
    max_file_size: int = 0
    n_cps: int = 16
    n_iops: int = 16
    n_disks: int = 16
    block_size: int = 8192
    #: machine-wide scheduling: ``fcfs`` is the paper's drive queue (each
    #: DDIO collective presorts for itself); ``shared-cscan`` merges all
    #: active collectives into one elevator per disk at the IOP.
    disk_scheduler: str = "fcfs"
    #: worker-pool size of each shared per-disk queue (the per-drive buffer
    #: budget; the paper's double-buffering 2).  Only meaningful with a
    #: ``shared-*`` scheduler.
    shared_queue_workers: int = 2
    #: storage backend: ``disk`` (the paper's HP 97560) or ``ssd`` (the
    #: bandwidth-matched flash model of :mod:`repro.disk.flash`).
    device: str = "disk"
    # -- fault injection (all-defaults == healthy machine, bit-identical to
    # -- pre-fault builds; see repro.disk.faults and docs/faults.md) --------
    #: per-request probability of a retryable media error, every drive
    fault_transient_rate: float = 0.0
    #: latent bad LBN ranges per drive (permanent read errors)
    fault_bad_ranges: int = 0
    fault_bad_range_sectors: int = 64
    #: fail-slow episode: drive ``fault_slow_disk`` stretches mechanical time
    #: by ``fault_slow_factor`` inside [slow_start, slow_start + duration)
    fault_slow_factor: float = 1.0
    fault_slow_disk: int = -1
    fault_slow_start: float = 0.0
    fault_slow_duration: float = 0.0
    #: drive ``fault_fail_stop_disk`` dies at ``fault_fail_stop_time`` (-1: none)
    fault_fail_stop_disk: int = -1
    fault_fail_stop_time: float = 0.0
    #: silently-corrupting LBN ranges per drive: reads overlapping one
    #: complete ``ok`` with flipped payload bytes — only client checksums
    #: (``checksums=True``) can see them
    fault_silent_ranges: int = 0
    fault_silent_range_sectors: int = 64
    #: confine the silent ranges to one drive index (-1: every drive)
    fault_silent_disk: int = -1
    #: client response to errored requests: ``retry`` | ``degrade`` | ``abort``
    on_fault: str = "retry"
    # -- redundancy & integrity (all-defaults == no parity, no checksums,
    # -- bit-identical to pre-redundancy builds; see repro.disk.redundancy
    # -- and docs/redundancy.md) -------------------------------------------
    #: ``none`` or ``parity`` (declustered RAID-5 layer: rotated parity,
    #: hot spare, degraded reads, background rebuild)
    redundancy: str = "none"
    #: rebuild bandwidth cap, bytes/s of reconstructed data (0: the module
    #: default, ~4 MB/s)
    rebuild_bandwidth: float = 0.0
    #: verify per-block checksums at the client on every read (end-to-end
    #: integrity; detects silent corruption, repaired via parity when on)
    checksums: bool = False
    #: run the driver in constant-memory streaming mode: no per-request
    #: record list, percentiles from the mergeable sketch only (they come
    #: from the sketch either way) — required for million-session points
    streaming: bool = False
    # -- admission control (all-defaults == the FIFO counting semaphore,
    # -- bit-identical to pre-admission builds; see repro.workload.admission
    # -- and docs/workloads.md) --------------------------------------------
    #: admission discipline: ``fifo`` | ``sjf`` | ``priority`` | ``edf``
    admission_policy: str = "fifo"
    #: SJF aging bound, seconds (0: the policy default)
    admission_aging: float = 0.0
    #: EDF meetability estimate, bytes/s (0: deadline-passed only)
    edf_service_rate: float = 0.0
    #: static QoS classes stamped per session (1: everyone equal)
    priority_levels: int = 1
    #: mean deadline budget, seconds after arrival (0: no deadlines)
    deadline_slack: float = 0.0
    #: adaptive-K controller SLO target, seconds (0: controller disabled)
    controller_target_p99: float = 0.0
    #: control interval, simulated seconds
    controller_interval: float = 0.5
    #: controller's K ceiling (0: 4x the static concurrency)
    controller_max_k: int = 0
    #: shed queued sessions older than the SLO target each interval
    controller_shed: bool = False
    #: age threshold for shedding, seconds since arrival (0: the target
    #: itself; set below the target to leave service-time headroom)
    controller_shed_age: float = 0.0
    seed: int = 0
    label: str = ""

    @property
    def pattern(self):
        """Mixed-pattern summary (duck-compatible with ExperimentConfig rows)."""
        specs = ",".join(self.pattern_specs)
        return f"mix({specs})"

    def workload(self):
        """The :class:`ServiceWorkload` this config describes."""
        return ServiceWorkload(
            n_requests=self.n_requests,
            arrival=self.arrival,
            arrival_rate=self.arrival_rate,
            think_time=self.think_time,
            exponential_think=self.exponential_think,
            concurrency=self.concurrency,
            n_files=self.n_files,
            file_size=self.file_size,
            layout=self.layout,
            read_fraction=self.read_fraction,
            file_assignment=self.file_assignment,
            pattern_specs=tuple(self.pattern_specs),
            record_size=self.record_size,
            record_sizes=tuple(self.record_sizes),
            size_distribution=self.size_distribution,
            size_alpha=self.size_alpha,
            size_sigma=self.size_sigma,
            max_file_size=self.max_file_size,
            priority_levels=self.priority_levels,
            deadline_slack=self.deadline_slack,
            seed=self.seed,
        )

    def controller_config(self):
        """Controller kwargs for :func:`run_service`, or None when disabled."""
        if self.controller_target_p99 <= 0:
            return None
        return {
            "target_p99": self.controller_target_p99,
            "interval": self.controller_interval,
            "max_k": self.controller_max_k,
            "shed": self.controller_shed,
            "shed_age": self.controller_shed_age,
        }

    def fault_config(self):
        """The :class:`FaultConfig` this point injects, or None when healthy.

        Returning None for the all-defaults case is load-bearing: a healthy
        config builds a machine with no fault plans and a file system with no
        fault policy, bit-identical to pre-fault builds.
        """
        config = FaultConfig(
            transient_rate=self.fault_transient_rate,
            bad_range_count=self.fault_bad_ranges,
            bad_range_sectors=self.fault_bad_range_sectors,
            slow_factor=self.fault_slow_factor,
            slow_disk=self.fault_slow_disk,
            slow_start=self.fault_slow_start,
            slow_duration=self.fault_slow_duration,
            fail_stop_disk=self.fault_fail_stop_disk,
            fail_stop_time=self.fault_fail_stop_time,
            silent_range_count=self.fault_silent_ranges,
            silent_range_sectors=self.fault_silent_range_sectors,
            silent_disk=self.fault_silent_disk,
        )
        return config if config.enabled else None

    def machine_config(self):
        return MachineConfig(
            n_cps=self.n_cps,
            n_iops=self.n_iops,
            n_disks=self.n_disks,
            block_size=self.block_size,
        )

    def describe(self):
        return (f"{self.method} service {self.arrival}@{self.arrival_rate:g}/s "
                f"K={self.concurrency} {self.n_requests} reqs x "
                f"{self.file_size // KILOBYTE} KB files={self.n_files} "
                f"cps={self.n_cps} iops={self.n_iops} disks={self.n_disks} "
                f"sched={self.disk_scheduler}")


def run_service_experiment(config, seed=None):
    """Run one service trial and return its :class:`ServiceResult`."""
    if not isinstance(config, ServiceExperimentConfig):
        raise TypeError(
            f"expected ServiceExperimentConfig, got {type(config).__name__}")
    trial_seed = config.seed if seed is None else seed
    fault_config = config.fault_config()
    return run_service(
        config.method,
        config.workload(),
        machine_config=config.machine_config(),
        seed=trial_seed,
        disk_scheduler=config.disk_scheduler,
        shared_queue_workers=config.shared_queue_workers,
        device=config.device,
        redundancy=config.redundancy,
        rebuild_bandwidth=config.rebuild_bandwidth,
        checksums=config.checksums,
        fault_config=fault_config,
        on_fault=config.on_fault,
        retain_requests=not config.streaming,
        admission_policy=config.admission_policy,
        admission_aging=config.admission_aging,
        edf_service_rate=config.edf_service_rate,
        controller=config.controller_config(),
        # Insurance for fault sweeps: a scenario that wedges the protocol
        # raises a diagnosable DeadlockError instead of hanging the sweep.
        watchdog=FAULT_WATCHDOG if fault_config is not None else None,
    )


register_experiment_family(ServiceExperimentConfig, run_service_experiment,
                           ServiceResult)


# -- the figure ------------------------------------------------------------------

def service_configs(loads=DEFAULT_LOADS, methods=SERVICE_METHODS, **overrides):
    """The config grid of the service figure: one point per (load, method)."""
    configs = []
    for load in loads:
        for method in methods:
            configs.append(ServiceExperimentConfig(
                method=method,
                arrival_rate=load,
                label=f"{method}@{load:g}",
                **overrides,
            ))
    return configs


def service_figure(loads=DEFAULT_LOADS, methods=SERVICE_METHODS, trials=1,
                   progress=None, workers=None, cache=None, **overrides):
    """Throughput and response-time percentiles vs offered load, per method.

    Returns ``(summaries, text)`` like every other figure generator.  Extra
    keyword arguments override :class:`ServiceExperimentConfig` fields (e.g.
    ``n_cps=4, file_size=128*1024`` for a laptop-scale run).
    """
    from repro.experiments.runner import sweep_parallel

    configs = service_configs(loads=loads, methods=methods, **overrides)
    summaries = sweep_parallel(configs, trials=trials, progress=progress,
                               workers=workers, cache=cache)
    throughput_series = {}
    p50_series = {}
    p99_series = {}
    rows = []
    for summary in summaries:
        config = summary.config
        name = "DDIO" if config.method.startswith("disk-directed") else \
            config.method.replace("traditional", "TC")
        load = config.arrival_rate
        mean_tp = summary.mean_throughput_mb
        p50 = _mean(result.response_percentile(0.50) for result in summary.results)
        p99 = _mean(result.response_percentile(0.99) for result in summary.results)
        throughput_series.setdefault(name, []).append((load, mean_tp))
        p50_series.setdefault(name, []).append((load, p50 * 1e3))
        p99_series.setdefault(name, []).append((load, p99 * 1e3))
        rows.append({
            "method": config.method,
            "load_req_s": load,
            "throughput_mb": mean_tp,
            "p50_ms": p50 * 1e3,
            "p99_ms": p99 * 1e3,
            "max_in_flight": max(result.max_in_flight
                                 for result in summary.results),
            "trials": len(summary.results),
        })
    sample = configs[0]
    text = (
        f"Service workload: {sample.n_requests} mixed collectives "
        f"({sample.read_fraction:.0%} reads) over {sample.n_files} "
        f"{sample.file_size // KILOBYTE} KB {sample.layout} files, "
        f"K={sample.concurrency} admitted, {sample.arrival} arrivals\n\n"
        + format_table(rows, columns=["method", "load_req_s", "throughput_mb",
                                      "p50_ms", "p99_ms", "max_in_flight",
                                      "trials"])
        + "\n\nSustained throughput (Mbytes/s) vs offered load (req/s)\n"
        + format_series_table(throughput_series, x_label="load")
        + "\n\nMedian response time (ms) vs offered load (req/s)\n"
        + format_series_table(p50_series, x_label="load")
        + "\n\n99th-percentile response time (ms) vs offered load (req/s)\n"
        + format_series_table(p99_series, x_label="load")
    )
    return summaries, text


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


# -- the scheduler-comparison figure ---------------------------------------------

#: Concurrency levels swept by the scheduler figure: the K>1 points are where
#: per-collective presorted streams interleave at the drive.
SCHEDULER_CONCURRENCIES = (1, 2, 4, 8)

#: The scheduling regimes compared: each DDIO collective presorting for
#: itself over a FCFS drive queue (the paper's single-collective design,
#: unchanged under concurrency) vs one shared elevator (CSCAN) or
#: shortest-seek queue (SSTF) per disk at the IOP merging all active
#: collectives.
SCHEDULER_CHOICES = ("fcfs", "shared-sstf", "shared-cscan")

#: Offered loads for the scheduler figure (requests/second).
SCHEDULER_LOADS = (8.0, 16.0)

#: Worker-pool sizes per shared queue swept by the scheduler figure: the
#: per-drive buffer budget (the paper's double-buffering is 2).
SCHEDULER_POOL_SIZES = (2,)


def service_scheduler_configs(loads=SCHEDULER_LOADS,
                              concurrencies=SCHEDULER_CONCURRENCIES,
                              schedulers=SCHEDULER_CHOICES,
                              pool_sizes=SCHEDULER_POOL_SIZES, **overrides):
    """The config grid: one point per (K, scheduler, pool size, load), DDIO only.

    Worker-pool size only matters under shared scheduling, so ``fcfs`` points
    are generated once — at the sweep's first pool size, keeping the baseline
    row consistent with the sweep it anchors — however many *pool_sizes* are
    swept; a pool sweep does not duplicate the baseline.
    """
    configs = []
    for concurrency in concurrencies:
        for scheduler in schedulers:
            shared = scheduler.startswith("shared-")
            for pool in (pool_sizes if shared else pool_sizes[:1]):
                for load in loads:
                    label = f"K={concurrency} {scheduler}"
                    if shared and len(pool_sizes) > 1:
                        label += f" w={pool}"
                    configs.append(ServiceExperimentConfig(
                        method="disk-directed",
                        arrival_rate=load,
                        concurrency=concurrency,
                        disk_scheduler=scheduler,
                        shared_queue_workers=pool,
                        label=f"{label}@{load:g}",
                        **overrides,
                    ))
    return configs


def service_scheduler_figure(loads=SCHEDULER_LOADS,
                             concurrencies=SCHEDULER_CONCURRENCIES,
                             schedulers=SCHEDULER_CHOICES,
                             pool_sizes=SCHEDULER_POOL_SIZES, trials=1,
                             progress=None, workers=None, cache=None,
                             **overrides):
    """Cross-collective IOP scheduling vs per-collective presort, K∈{1,2,4,8}.

    The K>1 pathology: every DDIO session presorts its own block list, so at
    concurrency K the drive sees K interleaved sorted streams — forfeiting
    the single-collective sort benefit the paper demonstrates.  The shared
    per-disk queue at the IOP merges the streams back into one sweep; this
    figure compares the CSCAN elevator against greedy SSTF (and, via
    *pool_sizes*, the per-drive worker-pool budget) at each K.  The regimes
    should coincide at K=1 and diverge in the shared policies' favour as K
    grows.

    Returns ``(summaries, text)`` like every other figure generator; extra
    keyword arguments override :class:`ServiceExperimentConfig` fields.
    """
    from repro.experiments.runner import sweep_parallel

    configs = service_scheduler_configs(loads=loads,
                                        concurrencies=concurrencies,
                                        schedulers=schedulers,
                                        pool_sizes=pool_sizes, **overrides)
    summaries = sweep_parallel(configs, trials=trials, progress=progress,
                               workers=workers, cache=cache)
    sweep_pools = len(pool_sizes) > 1
    throughput_series = {}
    p99_series = {}
    rows = []
    for summary in summaries:
        config = summary.config
        name = f"K={config.concurrency} {config.disk_scheduler}"
        if sweep_pools and config.disk_scheduler.startswith("shared-"):
            name += f" w={config.shared_queue_workers}"
        load = config.arrival_rate
        mean_tp = summary.mean_throughput_mb
        p99 = _mean(result.response_percentile(0.99) for result in summary.results)
        throughput_series.setdefault(name, []).append((load, mean_tp))
        p99_series.setdefault(name, []).append((load, p99 * 1e3))
        rows.append({
            "K": config.concurrency,
            "scheduler": config.disk_scheduler,
            "workers": config.shared_queue_workers,
            "load_req_s": load,
            "throughput_mb": mean_tp,
            "p99_ms": p99 * 1e3,
            "trials": len(summary.results),
        })
    sample = configs[0]
    text = (
        f"Cross-collective IOP scheduling (disk-directed I/O): "
        f"per-collective sort (fcfs drive queue) vs shared per-disk queues\n"
        f"{sample.n_requests} mixed collectives "
        f"({sample.read_fraction:.0%} reads) over {sample.n_files} "
        f"{sample.file_size // KILOBYTE} KB {sample.layout} files, "
        f"{sample.arrival} arrivals\n\n"
        + format_table(rows, columns=["K", "scheduler", "workers",
                                      "load_req_s", "throughput_mb", "p99_ms",
                                      "trials"])
        + "\n\nSustained throughput (Mbytes/s) vs offered load (req/s)\n"
        + format_series_table(throughput_series, x_label="load")
        + "\n\n99th-percentile response time (ms) vs offered load (req/s)\n"
        + format_series_table(p99_series, x_label="load")
    )
    return summaries, text


# -- the overload figure ----------------------------------------------------------

#: Offered loads (requests/second) swept by the overload figure.  The default
#: service machine saturates around 8-9 req/s, so the sweep reaches ~4x
#: saturation — deep into the regime where an open loop's queue grows without
#: bound and response time is governed by the asymptote, not the mean.
OVERLOAD_LOADS = (4.0, 8.0, 16.0, 24.0, 32.0)

#: Methods compared by the overload figure.
OVERLOAD_METHODS = ("disk-directed", "traditional")


def service_overload_configs(loads=OVERLOAD_LOADS, methods=OVERLOAD_METHODS,
                             **overrides):
    """The config grid of the overload figure: one point per (load, method).

    Defaults describe the paper's worst case scaled to a server: Pareto
    (alpha=1.5) file sizes with mean 1 MB, a record-size mix that includes
    the 8-byte cyclic requests of Figure 3, random layout, and a larger
    machine (32 disks over 16 IOPs) so the overload comes from the request
    stream, not from an undersized back end.
    """
    defaults = dict(
        size_distribution="pareto",
        size_alpha=1.5,
        record_sizes=(8, 8192),
        n_disks=32,
        n_requests=32,
        concurrency=4,
        layout="random",
    )
    defaults.update(overrides)
    configs = []
    for load in loads:
        for method in methods:
            configs.append(ServiceExperimentConfig(
                method=method,
                arrival_rate=load,
                label=f"{method}@{load:g}",
                **defaults,
            ))
    return configs


def service_overload_figure(loads=OVERLOAD_LOADS, methods=OVERLOAD_METHODS,
                            trials=1, progress=None, workers=None, cache=None,
                            **overrides):
    """Response-time asymptotes under overload: heavy tails + 8-byte records.

    The paper's core claim is that disk-directed I/O stays near hardware
    limits even for its worst patterns while traditional caching collapses.
    The closed-loop service figure cannot show the collapse: offered load
    adapts to capacity.  This figure pushes an *open-loop* Poisson stream to
    ~4x saturation with heavy-tailed (Pareto) file sizes and a record mix
    that includes the 8-byte cyclic worst case, and plots sustained
    throughput plus mean/p99 response time against offered load.  Throughput
    should flatten at each method's capacity (DDIO's plateau higher) while
    response times diverge — and the DDIO:TC response-time gap should
    *widen* with load, because TC burns its IOP CPUs on per-record request
    handling precisely when there is no idle time left to hide it in.

    Returns ``(summaries, text)``; extra keyword arguments override
    :class:`ServiceExperimentConfig` fields (tests run it on a tiny machine).
    """
    from repro.experiments.runner import sweep_parallel

    configs = service_overload_configs(loads=loads, methods=methods,
                                       **overrides)
    summaries = sweep_parallel(configs, trials=trials, progress=progress,
                               workers=workers, cache=cache)
    throughput_series = {}
    mean_series = {}
    p99_series = {}
    rows = []
    for summary in summaries:
        config = summary.config
        name = "DDIO" if config.method.startswith("disk-directed") else \
            config.method.replace("traditional", "TC")
        load = config.arrival_rate
        mean_tp = summary.mean_throughput_mb
        mean_rt = _mean(result.mean_response_time for result in summary.results)
        p99 = _mean(result.response_percentile(0.99)
                    for result in summary.results)
        throughput_series.setdefault(name, []).append((load, mean_tp))
        mean_series.setdefault(name, []).append((load, mean_rt))
        p99_series.setdefault(name, []).append((load, p99))
        rows.append({
            "method": config.method,
            "load_req_s": load,
            "throughput_mb": mean_tp,
            "mean_rt_s": mean_rt,
            "p99_rt_s": p99,
            "max_in_flight": max(result.max_in_flight
                                 for result in summary.results),
            "trials": len(summary.results),
        })
    sample = configs[0]
    record_mix = ",".join(str(size) for size in
                          (sample.record_sizes or (sample.record_size,)))
    text = (
        f"Overload study: {sample.arrival} arrivals to ~{max(loads):g} req/s, "
        f"{sample.size_distribution} file sizes (mean "
        f"{sample.file_size // KILOBYTE} KB, alpha={sample.size_alpha:g}), "
        f"record mix {{{record_mix}}} bytes, {sample.layout} layout, "
        f"{sample.n_cps} CPs / {sample.n_iops} IOPs / {sample.n_disks} disks, "
        f"K={sample.concurrency}\n\n"
        + format_table(rows, columns=["method", "load_req_s", "throughput_mb",
                                      "mean_rt_s", "p99_rt_s", "max_in_flight",
                                      "trials"])
        + "\n\nSustained throughput (Mbytes/s) vs offered load (req/s)\n"
        + format_series_table(throughput_series, x_label="load")
        + "\n\nMean response time (s) vs offered load (req/s) — the asymptote\n"
        + format_series_table(mean_series, x_label="load")
        + "\n\n99th-percentile response time (s) vs offered load (req/s)\n"
        + format_series_table(p99_series, x_label="load")
    )
    return summaries, text


# -- the million-session figure ----------------------------------------------------

#: Offered loads (requests/second) for the sweep rows of the million-session
#: figure.  The headline machine (8 CPs / 8 IOPs / 128 disks, 8 KB sessions)
#: saturates near 95 req/s under DDIO and ~360 req/s under TC, so the sweep
#: straddles both saturation points.
MILLIONS_LOADS = (50.0, 100.0, 200.0, 400.0)

#: The deep-overload load of the headline rows: far beyond either method's
#: capacity, so the measured completion rate *is* the overload asymptote.
MILLIONS_HEADLINE_LOAD = 800.0

#: Methods compared by the million-session figure.
MILLIONS_METHODS = ("disk-directed", "traditional")

#: Sessions per sweep row (cheap) and per headline row (the million-session
#: asymptote measurement the figure exists for).
MILLIONS_SWEEP_REQUESTS = 50_000
MILLIONS_HEADLINE_REQUESTS = 1_000_000


def service_millions_configs(loads=MILLIONS_LOADS, methods=MILLIONS_METHODS,
                             headline_load=MILLIONS_HEADLINE_LOAD,
                             sweep_requests=MILLIONS_SWEEP_REQUESTS,
                             headline_requests=MILLIONS_HEADLINE_REQUESTS,
                             **overrides):
    """The config grid: (loads + headline_load) x methods, streaming driver.

    Defaults describe the smallest useful session — one 8 KB record against
    a 128-disk machine — because the point of this figure is *session count*,
    not bytes: a million independent arrivals through one simulated server.
    Every config runs with ``streaming=True`` (no per-request record list),
    which is what makes the million-session rows possible at all.
    """
    defaults = dict(
        n_cps=8,
        n_iops=8,
        n_disks=128,
        n_files=64,
        file_size=8 * KILOBYTE,
        layout="contiguous",
        pattern_specs=("b",),
        record_size=8192,
        concurrency=64,
        streaming=True,
    )
    defaults.update(overrides)
    configs = []
    for load in tuple(loads) + (headline_load,):
        n_requests = headline_requests if load == headline_load \
            else sweep_requests
        for method in methods:
            configs.append(ServiceExperimentConfig(
                method=method,
                arrival_rate=load,
                n_requests=n_requests,
                label=f"{method}@{load:g}",
                **defaults,
            ))
    return configs


def service_millions_figure(loads=MILLIONS_LOADS, methods=MILLIONS_METHODS,
                            headline_load=MILLIONS_HEADLINE_LOAD,
                            sweep_requests=MILLIONS_SWEEP_REQUESTS,
                            headline_requests=MILLIONS_HEADLINE_REQUESTS,
                            trials=1, progress=None, workers=None, cache=None,
                            json_path=None, **overrides):
    """The overload asymptote, measured directly: a million 8 KB sessions.

    The overload figure extrapolates each method's asymptote from 32-request
    runs; this figure *measures* it.  An open-loop Poisson stream is pushed
    to ~8x DDIO saturation and run for a million sessions per headline row —
    only possible because the streaming driver folds every completed session
    into mergeable aggregates (constant memory in the session count) instead
    of retaining per-request records.  The sweep rows trace the approach to
    saturation; the headline rows pin the asymptote to three digits.

    At this scale the result inverts the paper's headline, honestly: an
    8 KB session is a single block per file, so DDIO's per-collective setup
    (presort, per-disk streams across 8 IOPs) is pure overhead and
    traditional caching's asymptote is the higher one.  DDIO's advantage is
    a *per-byte* one that grows with transfer size — which is exactly what
    the paper says, read from the other side.

    When *json_path* is given, the rows are also written as the
    ``docs/data/service_millions.json`` artifact quoted by the docs.

    Returns ``(summaries, text)``; extra keyword arguments override
    :class:`ServiceExperimentConfig` fields (tests shrink the run this way).
    """
    import json as _json

    from repro.experiments.runner import sweep_parallel

    configs = service_millions_configs(
        loads=loads, methods=methods, headline_load=headline_load,
        sweep_requests=sweep_requests, headline_requests=headline_requests,
        **overrides)
    summaries = sweep_parallel(configs, trials=trials, progress=progress,
                               workers=workers, cache=cache)
    rate_series = {}
    p99_series = {}
    rows = []
    for summary in summaries:
        config = summary.config
        name = "DDIO" if config.method.startswith("disk-directed") else "TC"
        load = config.arrival_rate
        mean_tp = summary.mean_throughput_mb
        rate = _mean(result.aggregates.get("completed", result.n_requests)
                     / result.elapsed
                     for result in summary.results if result.elapsed > 0)
        p50 = _mean(result.response_percentile(0.50)
                    for result in summary.results)
        p99 = _mean(result.response_percentile(0.99)
                    for result in summary.results)
        rate_series.setdefault(name, []).append((load, rate))
        p99_series.setdefault(name, []).append((load, p99))
        rows.append({
            "method": config.method,
            "load_req_s": load,
            "n_requests": config.n_requests,
            "completion_rate_s": rate,
            "throughput_mb": mean_tp,
            "p50_rt_s": p50,
            "p99_rt_s": p99,
            "max_in_flight": max(result.max_in_flight
                                 for result in summary.results),
            "trials": len(summary.results),
        })
    sample = configs[0]
    text = (
        f"Million-session overload asymptote: {sample.arrival} arrivals to "
        f"{headline_load:g} req/s, {headline_requests} sessions per headline "
        f"row ({sweep_requests} per sweep row), "
        f"{sample.file_size // KILOBYTE} KB sessions over {sample.n_files} "
        f"{sample.layout} files, {sample.n_cps} CPs / {sample.n_iops} IOPs / "
        f"{sample.n_disks} disks, K={sample.concurrency}, streaming driver\n\n"
        + format_table(rows, columns=["method", "load_req_s", "n_requests",
                                      "completion_rate_s", "throughput_mb",
                                      "p50_rt_s", "p99_rt_s", "max_in_flight",
                                      "trials"])
        + "\n\nCompletion rate (sessions/s) vs offered load (req/s) — the "
          "asymptote\n"
        + format_series_table(rate_series, x_label="load")
        + "\n\n99th-percentile response time (s) vs offered load (req/s)\n"
        + format_series_table(p99_series, x_label="load")
    )
    if json_path:
        artifact = {
            "figure": "service-millions",
            "regenerate": "PYTHONPATH=src python -m repro.experiments.figures "
                          "service-millions --json docs/data/"
                          "service_millions.json",
            "config": {
                "arrival": sample.arrival,
                "file_size": sample.file_size,
                "record_size": sample.record_size,
                "layout": sample.layout,
                "n_files": sample.n_files,
                "n_cps": sample.n_cps,
                "n_iops": sample.n_iops,
                "n_disks": sample.n_disks,
                "concurrency": sample.concurrency,
                "streaming": sample.streaming,
                "headline_load": headline_load,
                "headline_requests": headline_requests,
                "sweep_requests": sweep_requests,
                "trials": trials,
                "seed": sample.seed,
            },
            "rows": [{key: (round(value, 4)
                            if isinstance(value, float) else value)
                      for key, value in row.items()} for row in rows],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            _json.dump(artifact, handle, indent=2)
            handle.write("\n")
    return summaries, text


# -- the fault-injection figure ----------------------------------------------------

#: The fault scenarios swept by the ``service-faults`` figure, in sweep
#: order: name -> ServiceExperimentConfig fault-field overrides.  The sweep
#: spans the taxonomy of repro.disk.faults — transient media errors at two
#: rates, one fail-slow drive, one fail-stop drive out of 32, and the
#: combined "sick disk" — always against the healthy baseline.
FAULT_SCENARIOS = (
    ("healthy", {}),
    ("transient-1pct", {"fault_transient_rate": 0.01}),
    ("transient-5pct", {"fault_transient_rate": 0.05}),
    ("fail-slow-4x", {"fault_slow_disk": 0, "fault_slow_factor": 4.0,
                      "fault_slow_start": 0.0, "fault_slow_duration": 3600.0}),
    ("fail-stop", {"fault_fail_stop_disk": 0, "fault_fail_stop_time": 1.0}),
    ("sick-disk", {"fault_transient_rate": 0.01,
                   "fault_slow_disk": 0, "fault_slow_factor": 4.0,
                   "fault_slow_start": 0.0, "fault_slow_duration": 3600.0,
                   "fault_fail_stop_disk": 0, "fault_fail_stop_time": 2.0}),
)

#: Methods compared by the fault figure.
FAULT_METHODS = ("disk-directed", "traditional")

#: Offered load for the fault figure (requests/second): near saturation, so
#: retry storms and a lost drive bite while the healthy baseline still keeps
#: up — degradation, not overload, is what the figure isolates.
FAULT_LOAD = 8.0


def service_faults_configs(scenarios=FAULT_SCENARIOS, methods=FAULT_METHODS,
                           load=FAULT_LOAD, device="disk", **overrides):
    """The config grid of the fault figure: one point per (scenario, method).

    Defaults mirror the overload machine (32 disks over 16 IOPs, random
    layout) so "one fail-stop drive" means losing 1/32 of the spindles, but
    with fixed file sizes and a single near-saturation load so every delta
    against the healthy row is attributable to the injected faults.
    *device* swaps the storage backend (``disk`` / ``ssd``) so the same
    fault taxonomy can be priced on flash.
    """
    defaults = dict(
        n_disks=32,
        n_requests=32,
        concurrency=4,
        layout="random",
        device=device,
    )
    defaults.update(overrides)
    # An arrival_rate override (tests shrink the run this way) wins over the
    # explicit load parameter rather than colliding with it.
    load = defaults.pop("arrival_rate", load)
    configs = []
    for scenario, faults in scenarios:
        for method in methods:
            configs.append(ServiceExperimentConfig(
                method=method,
                arrival_rate=load,
                label=f"{scenario}:{method}",
                **faults,
                **defaults,
            ))
    return configs


def service_faults_figure(scenarios=FAULT_SCENARIOS, methods=FAULT_METHODS,
                          load=FAULT_LOAD, trials=1, progress=None,
                          workers=None, cache=None, json_path=None,
                          device="disk", **overrides):
    """Goodput and p99 under injected disk faults, DDIO vs TC.

    The robustness question the paper never asks: disk-directed I/O wins by
    giving the disks a long presorted stream — what happens when a drive in
    that stream errors, limps, or dies?  Each scenario is run for both
    methods under the bounded-retry policy; the table reports *goodput*
    (delivered-and-durable bytes/s — failed blocks are explicitly given up,
    never silently dropped), tail latency, undelivered data, retry volume
    and how many requests completed degraded.  Byte conservation
    (``delivered + failed == requested``) is asserted per trial.

    *device* re-runs the whole sweep on another storage backend (``ssd``
    prices the same fault taxonomy on flash: no positioning to recover, so
    fail-stop costs capacity, not schedule); when *json_path* is given the
    rows are written as a JSON artifact (``docs/data/service_faults_ssd.
    json`` is the flash run quoted by ``docs/faults.md``).  Returns
    ``(summaries, text)``; extra keyword arguments override
    :class:`ServiceExperimentConfig` fields (tests run a tiny machine).
    """
    import json as _json

    from repro.experiments.runner import sweep_parallel

    configs = service_faults_configs(scenarios=scenarios, methods=methods,
                                     load=load, device=device, **overrides)
    summaries = sweep_parallel(configs, trials=trials, progress=progress,
                               workers=workers, cache=cache)
    goodput_series = {}
    p99_series = {}
    rows = []
    for summary in summaries:
        config = summary.config
        scenario = config.label.split(":", 1)[0]
        name = "DDIO" if config.method.startswith("disk-directed") else "TC"
        for result in summary.results:
            if not result.conserves_bytes():
                raise AssertionError(
                    f"byte conservation violated in {config.label}: "
                    f"delivered + failed != requested")
        goodput = _mean(result.goodput_mb for result in summary.results)
        p99 = _mean(result.response_percentile(0.99)
                    for result in summary.results)
        goodput_series.setdefault(name, []).append((scenario, goodput))
        p99_series.setdefault(name, []).append((scenario, p99 * 1e3))
        rows.append({
            "scenario": scenario,
            "method": config.method,
            "goodput_mb": goodput,
            "p99_ms": p99 * 1e3,
            "failed_mb": _mean(result.failed_bytes / MEGABYTE
                               for result in summary.results),
            "lost_mb": _mean(result.lost_bytes / MEGABYTE
                             for result in summary.results),
            "retries": _mean(result.total_retries
                             for result in summary.results),
            "degraded": _mean(result.degraded_requests
                              for result in summary.results),
            "trials": len(summary.results),
        })
    sample = configs[0]
    text = (
        f"Fault injection on {sample.device}: {len(scenarios)} scenarios x "
        f"DDIO/TC under "
        f"bounded retry (on_fault={sample.on_fault!r}), "
        f"{sample.arrival}@{sample.arrival_rate:g} req/s, "
        f"{sample.n_requests} mixed "
        f"collectives over {sample.n_files} {sample.layout} files, "
        f"{sample.n_cps} CPs / {sample.n_iops} IOPs / {sample.n_disks} "
        f"disks\n\n"
        + format_table(rows, columns=["scenario", "method", "goodput_mb",
                                      "p99_ms", "failed_mb", "lost_mb",
                                      "retries", "degraded", "trials"])
        + "\n\nGoodput (Mbytes/s) per fault scenario\n"
        + format_series_table(goodput_series, x_label="scenario")
        + "\n\n99th-percentile response time (ms) per fault scenario\n"
        + format_series_table(p99_series, x_label="scenario")
    )
    if json_path:
        artifact = {
            "figure": "service-faults",
            "regenerate": "PYTHONPATH=src python -m repro.experiments.figures "
                          "service-faults --json <path>",
            "config": {
                "device": sample.device,
                "scenarios": [name for name, _ in scenarios],
                "methods": list(methods),
                "load_req_s": sample.arrival_rate,
                "on_fault": sample.on_fault,
                "n_requests": sample.n_requests,
                "concurrency": sample.concurrency,
                "layout": sample.layout,
                "n_cps": sample.n_cps,
                "n_iops": sample.n_iops,
                "n_disks": sample.n_disks,
                "trials": trials,
                "seed": sample.seed,
            },
            "rows": [{key: (round(value, 4)
                            if isinstance(value, float) else value)
                      for key, value in row.items()} for row in rows],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            _json.dump(artifact, handle, indent=2)
            handle.write("\n")
    return summaries, text


# -- the rebuild figure ------------------------------------------------------------

#: Storage backends swept by the ``service-rebuild`` figure.
REBUILD_DEVICES = ("disk", "ssd")

#: When the victim drive fail-stops (simulated seconds): late enough that
#: the healthy phase has a measured goodput, early enough that most of the
#: run exercises degraded reads and the rebuild stream.
REBUILD_KILL_TIME = 1.0

#: Background rebuild bandwidth cap, bytes/second of reconstructed data.
#: Deliberately a small fraction of a drive's ~2.2 Mbytes/s so the degraded
#: window is wide and the foreground-vs-rebuild contention is visible.
REBUILD_BANDWIDTH = 512 * 1024


def service_rebuild_configs(methods=FAULT_METHODS, devices=REBUILD_DEVICES,
                            load=FAULT_LOAD, **overrides):
    """The ``service-rebuild`` grid: one point per (device, method).

    Every cell runs ``redundancy="parity"`` with one drive killed at
    :data:`REBUILD_KILL_TIME` and the spare rebuilding at
    :data:`REBUILD_BANDWIDTH`; the machine otherwise mirrors the fault
    figure (32 drives, random layout, near-saturation load).
    """
    defaults = dict(
        n_disks=32,
        n_requests=32,
        concurrency=4,
        layout="random",
        redundancy="parity",
        rebuild_bandwidth=float(REBUILD_BANDWIDTH),
        fault_fail_stop_disk=0,
        fault_fail_stop_time=REBUILD_KILL_TIME,
    )
    defaults.update(overrides)
    load = defaults.pop("arrival_rate", load)
    configs = []
    for device in devices:
        for method in methods:
            configs.append(ServiceExperimentConfig(
                method=method,
                arrival_rate=load,
                device=device,
                label=f"{device}:{method}",
                **defaults,
            ))
    return configs


def _phase_goodputs(result, kill_time):
    """Goodput (Mbytes/s) in the healthy / degraded / rebuilt phases.

    Buckets the retained request records by completion time against the
    kill instant and the rebuild-completion instant (``kill_time +
    rebuild_seconds`` from the parity counters).  A phase with no time span
    inside the run reports 0.0.
    """
    rebuild_end = kill_time + result.aggregates.get("rebuild_seconds", 0.0)
    spans = {
        "healthy": (result.start_time, kill_time),
        "degraded": (kill_time, rebuild_end),
        "rebuilt": (rebuild_end, result.end_time),
    }
    goodputs = {}
    for phase, (begin, end) in spans.items():
        width = end - begin
        if width <= 0:
            goodputs[phase] = 0.0
            continue
        moved = sum(record["bytes_moved"] for record in result.requests
                    if record.get("completed_time") is not None
                    and begin <= record["completed_time"] < end)
        goodputs[phase] = moved / width / MEGABYTE
    return goodputs


def service_rebuild_figure(methods=FAULT_METHODS, devices=REBUILD_DEVICES,
                           load=FAULT_LOAD, trials=1, progress=None,
                           workers=None, cache=None, json_path=None,
                           **overrides):
    """Goodput timeline through kill-drive -> degraded service -> rebuilt.

    The redundancy question: with declustered parity, losing a drive
    mid-run must cost *throughput*, never *data*.  Each cell kills one of
    32 drives under near-saturation service load and reports goodput in
    three phases — before the kill, while reads on the dead drive are
    reconstructed from survivors (with the rebuild stream competing for
    the same spindles), and after the hot spare holds every rebuilt row —
    plus the reconstruction volume, the parity write overhead, and the
    rebuild duration.  Two invariants are asserted per trial: byte
    conservation, and **zero failed bytes** — under parity the fail-stop
    that made the fault figure give up data loses none.

    When *json_path* is given the rows are written as the
    ``docs/data/service_rebuild.json`` artifact quoted by
    ``docs/redundancy.md``.  Returns ``(summaries, text)``; extra keyword
    arguments override :class:`ServiceExperimentConfig` fields (tests and
    the CI smoke step shrink the run).
    """
    import json as _json

    from repro.experiments.runner import sweep_parallel

    configs = service_rebuild_configs(methods=methods, devices=devices,
                                      load=load, **overrides)
    summaries = sweep_parallel(configs, trials=trials, progress=progress,
                               workers=workers, cache=cache)
    rows = []
    phase_series = {}
    for summary in summaries:
        config = summary.config
        name = "DDIO" if config.method.startswith("disk-directed") else "TC"
        series = f"{config.device}:{name}"
        for result in summary.results:
            if not result.conserves_bytes():
                raise AssertionError(
                    f"byte conservation violated in {config.label}: "
                    f"delivered + failed != requested")
            if result.failed_bytes or result.lost_bytes:
                raise AssertionError(
                    f"parity lost data in {config.label}: "
                    f"failed={result.failed_bytes} lost={result.lost_bytes}")
        phases = [_phase_goodputs(result, config.fault_fail_stop_time)
                  for result in summary.results]
        row = {
            "device": config.device,
            "method": config.method,
            "healthy_mb": _mean(p["healthy"] for p in phases),
            "degraded_mb": _mean(p["degraded"] for p in phases),
            "rebuilt_mb": _mean(p["rebuilt"] for p in phases),
            "p99_ms": _mean(result.response_percentile(0.99)
                            for result in summary.results) * 1e3,
            "reconstructed_mb": _mean(
                result.aggregates.get("reconstructed_bytes", 0) / MEGABYTE
                for result in summary.results),
            "parity_overhead_mb": _mean(
                result.aggregates.get("parity_overhead_bytes", 0) / MEGABYTE
                for result in summary.results),
            "rebuild_s": _mean(result.aggregates.get("rebuild_seconds", 0.0)
                               for result in summary.results),
            "rebuilt_rows": _mean(result.aggregates.get("rebuilt_rows", 0)
                                  for result in summary.results),
            "failed_mb": 0.0,
            "trials": len(summary.results),
        }
        rows.append(row)
        for phase in ("healthy", "degraded", "rebuilt"):
            phase_series.setdefault(series, []).append(
                (phase, row[f"{phase}_mb"]))
    sample = configs[0]
    text = (
        f"Declustered parity under fail-stop: drive {sample.fault_fail_stop_disk} "
        f"of {sample.n_disks} killed at t={sample.fault_fail_stop_time:g}s, "
        f"rebuild capped at "
        f"{sample.rebuild_bandwidth / MEGABYTE:.2f} Mbytes/s, "
        f"{sample.arrival}@{sample.arrival_rate:g} req/s, "
        f"{sample.n_requests} mixed collectives over {sample.n_files} "
        f"{sample.layout} files, {sample.n_cps} CPs / {sample.n_iops} IOPs"
        f"\n\n"
        + format_table(rows, columns=["device", "method", "healthy_mb",
                                      "degraded_mb", "rebuilt_mb", "p99_ms",
                                      "reconstructed_mb",
                                      "parity_overhead_mb", "rebuild_s",
                                      "rebuilt_rows", "failed_mb", "trials"])
        + "\n\nGoodput (Mbytes/s) per phase of the drive-loss timeline\n"
        + format_series_table(phase_series, x_label="phase")
        + "\n\nfailed_mb is asserted zero: parity degrades goodput, "
          "never data."
    )
    if json_path:
        artifact = {
            "figure": "service-rebuild",
            "regenerate": "PYTHONPATH=src python -m repro.experiments.figures "
                          "service-rebuild --json docs/data/"
                          "service_rebuild.json",
            "config": {
                "devices": list(devices),
                "methods": list(methods),
                "load_req_s": sample.arrival_rate,
                "redundancy": sample.redundancy,
                "rebuild_bandwidth": sample.rebuild_bandwidth,
                "fail_stop_disk": sample.fault_fail_stop_disk,
                "fail_stop_time": sample.fault_fail_stop_time,
                "n_requests": sample.n_requests,
                "concurrency": sample.concurrency,
                "layout": sample.layout,
                "n_cps": sample.n_cps,
                "n_iops": sample.n_iops,
                "n_disks": sample.n_disks,
                "trials": trials,
                "seed": sample.seed,
            },
            "rows": [{key: (round(value, 4)
                            if isinstance(value, float) else value)
                      for key, value in row.items()} for row in rows],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            _json.dump(artifact, handle, indent=2)
            handle.write("\n")
    return summaries, text


# -- the admission figure ----------------------------------------------------------

#: Offered loads for the admission figure (requests/second): saturation and
#: the 4x-saturation overload point where FIFO's tail collapses.
ADMISSION_LOADS = (8.0, 32.0)

#: The admission disciplines compared, in sweep order.  ``controller`` is
#: FIFO ordering plus the adaptive-K SLO controller with load shedding —
#: the row that must hold the p99 target no static K can.
ADMISSION_ROWS = ("fifo", "sjf", "priority", "edf", "controller")

#: The controller row's SLO: p99 response-time target, seconds.  At 4x
#: saturation the FIFO/static-K p99 sits well above this (the point of the
#: figure); shedding at ``ADMISSION_SHED_AGE`` leaves service-time headroom
#: under the target.
ADMISSION_TARGET_P99 = 2.0
ADMISSION_SHED_AGE = 1.0
ADMISSION_CONTROL_INTERVAL = 0.25

#: Mean deadline budget (seconds after arrival) stamped on every session of
#: the admission figure; the EDF row drops sessions whose deadline has
#: already passed at grant time.
ADMISSION_DEADLINE_SLACK = 2.0


def service_admission_configs(loads=ADMISSION_LOADS, rows=ADMISSION_ROWS,
                              **overrides):
    """The config grid of the admission figure: one point per (load, row).

    Every row runs the *same* workload — the overload machine (Pareto sizes,
    8-byte record mix, 32 disks, K=4) with two priority classes and ~2 s
    deadlines stamped on every session — so the only difference between rows
    is the admission discipline.  Disciplines that ignore a stamp (FIFO/SJF
    ignore both, priority ignores deadlines, EDF ignores classes) still run
    the identical request stream, keeping every column comparable.
    """
    defaults = dict(
        size_distribution="pareto",
        size_alpha=1.5,
        record_sizes=(8, 8192),
        n_disks=32,
        n_requests=64,
        concurrency=4,
        layout="random",
        priority_levels=2,
        deadline_slack=ADMISSION_DEADLINE_SLACK,
    )
    defaults.update(overrides)
    target = defaults.pop("controller_target_p99", ADMISSION_TARGET_P99)
    shed_age = defaults.pop("controller_shed_age", ADMISSION_SHED_AGE)
    interval = defaults.pop("controller_interval", ADMISSION_CONTROL_INTERVAL)
    configs = []
    for load in loads:
        for row in rows:
            if row == "controller":
                extra = dict(admission_policy="fifo",
                             controller_target_p99=target,
                             controller_interval=interval,
                             controller_shed=True,
                             controller_shed_age=shed_age)
            else:
                extra = dict(admission_policy=row)
            configs.append(ServiceExperimentConfig(
                method="disk-directed",
                arrival_rate=load,
                label=f"{row}@{load:g}",
                **extra,
                **defaults,
            ))
    return configs


def service_admission_figure(loads=ADMISSION_LOADS, rows=ADMISSION_ROWS,
                             trials=1, progress=None, workers=None,
                             cache=None, json_path=None, **overrides):
    """Which admission discipline protects the tail at 4x saturation?

    The overload figure shows FIFO admission destroying p99 under a Pareto
    stream: one giant session at the head of the K-slot queue stalls every
    small session behind it.  The driver knows each session's size, class
    and deadline *at admission time*, so this figure sweeps the disciplines
    of :mod:`repro.workload.admission` over the same overload workload and
    reports, per row: goodput (the disciplines that drop work must stay
    honest about it — ``shed_mb`` and conservation are in the table), p50
    and p99 response time of completed sessions, the urgent class's p99
    (what the priority discipline exists to protect), and drop/shed counts.
    The ``controller`` row adds the adaptive-K SLO controller with load
    shedding; ``slo_met`` records whether the measured p99 held the target
    that the FIFO/static-K row demonstrably misses at 4x saturation.

    Byte conservation (``moved + failed + shed == requested``) is asserted
    for every trial.  When *json_path* is given the rows are also written
    as the ``docs/data/service_admission.json`` artifact quoted by the
    docs.  Returns ``(summaries, text)``; extra keyword arguments override
    :class:`ServiceExperimentConfig` fields (tests shrink the run).
    """
    import json as _json

    from repro.experiments.runner import sweep_parallel

    configs = service_admission_configs(loads=loads, rows=rows, **overrides)
    summaries = sweep_parallel(configs, trials=trials, progress=progress,
                               workers=workers, cache=cache)
    p99_series = {}
    goodput_series = {}
    table_rows = []
    for summary in summaries:
        config = summary.config
        row = config.label.split("@", 1)[0]
        load = config.arrival_rate
        for result in summary.results:
            if not result.conserves_bytes():
                raise AssertionError(
                    f"byte conservation violated in {config.label}: "
                    f"moved + failed + shed != requested")
        goodput = _mean(result.goodput_mb for result in summary.results)
        p50 = _mean(result.response_percentile(0.50)
                    for result in summary.results)
        p99 = _mean(result.response_percentile(0.99)
                    for result in summary.results)
        urgent_p99 = _mean(_class_p99(result, "0")
                           for result in summary.results)
        target = config.controller_target_p99
        entry = {
            "policy": row,
            "load_req_s": load,
            "goodput_mb": goodput,
            "p50_s": p50,
            "p99_s": p99,
            "urgent_p99_s": urgent_p99,
            "dropped": _mean(result.dropped_requests
                             for result in summary.results),
            "shed": _mean(result.shed_requests
                          for result in summary.results),
            "shed_mb": _mean(result.shed_bytes / MEGABYTE
                             for result in summary.results),
            "trials": len(summary.results),
        }
        if target > 0:
            entry["slo_target_s"] = target
            entry["slo_met"] = p99 <= target
        p99_series.setdefault(row, []).append((load, p99))
        goodput_series.setdefault(row, []).append((load, goodput))
        table_rows.append(entry)
    sample = configs[0]
    text = (
        f"Admission control under overload (disk-directed I/O): "
        f"{sample.arrival} arrivals to {max(loads):g} req/s, "
        f"{sample.size_distribution} file sizes (mean "
        f"{sample.file_size // KILOBYTE} KB, alpha={sample.size_alpha:g}), "
        f"{sample.n_requests} sessions, {sample.priority_levels} priority "
        f"classes, ~{sample.deadline_slack:g} s deadlines, K={sample.concurrency} "
        f"static, {sample.n_cps} CPs / {sample.n_iops} IOPs / "
        f"{sample.n_disks} disks\n\n"
        + format_table(table_rows,
                       columns=["policy", "load_req_s", "goodput_mb", "p50_s",
                                "p99_s", "urgent_p99_s", "dropped", "shed",
                                "shed_mb", "trials"])
        + "\n\n99th-percentile response time (s) vs offered load (req/s)\n"
        + format_series_table(p99_series, x_label="load")
        + "\n\nGoodput (Mbytes/s) vs offered load (req/s)\n"
        + format_series_table(goodput_series, x_label="load")
    )
    if json_path:
        artifact = {
            "figure": "service-admission",
            "regenerate": "PYTHONPATH=src python -m repro.experiments.figures "
                          "service-admission --json docs/data/"
                          "service_admission.json",
            "config": {
                "arrival": sample.arrival,
                "loads": list(loads),
                "n_requests": sample.n_requests,
                "concurrency": sample.concurrency,
                "size_distribution": sample.size_distribution,
                "size_alpha": sample.size_alpha,
                "file_size": sample.file_size,
                "record_sizes": list(sample.record_sizes),
                "layout": sample.layout,
                "n_cps": sample.n_cps,
                "n_iops": sample.n_iops,
                "n_disks": sample.n_disks,
                "priority_levels": sample.priority_levels,
                "deadline_slack": sample.deadline_slack,
                "controller_target_p99": ADMISSION_TARGET_P99,
                "controller_shed_age": ADMISSION_SHED_AGE,
                "controller_interval": ADMISSION_CONTROL_INTERVAL,
                "trials": trials,
                "seed": sample.seed,
            },
            "rows": [{key: (round(value, 4)
                            if isinstance(value, float) else value)
                      for key, value in row.items()} for row in table_rows],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            _json.dump(artifact, handle, indent=2)
            handle.write("\n")
    return summaries, text


def _class_p99(result, class_key):
    """p99 of one priority class's response sketch (0.0 when absent)."""
    from repro.workload.aggregate import QuantileSketch

    data = result.class_sketches.get(class_key)
    if not data:
        return 0.0
    return QuantileSketch.from_dict(data).quantile(0.99)


# -- the flash figure ------------------------------------------------------------

#: Storage backends compared by the ``ddio-flash`` figure.
FLASH_DEVICES = ("disk", "ssd")

#: FTL-probe shape: small enough that random overwrites actually exhaust the
#: free-block pool and force garbage collection (the full-size device never
#: GCs at experiment scale — its overprovisioned blocks cover every run).
FLASH_PROBE_BLOCKS = 64
FLASH_PROBE_PAGES_PER_BLOCK = 32
FLASH_PROBE_OVERWRITES = 8192


def flash_ftl_probe(policies=("greedy", "cost-benefit"),
                    n_blocks=FLASH_PROBE_BLOCKS,
                    pages_per_block=FLASH_PROBE_PAGES_PER_BLOCK,
                    n_overwrites=FLASH_PROBE_OVERWRITES, seed=0):
    """Write-amplification of each GC policy under random overwrites.

    Sequentially fills a small FTL once (write amplification exactly 1 —
    the pinned property), then overwrites uniformly-random logical pages
    until GC has done real work, and reports WA and erase counts per
    policy.  Deterministic given *seed*; this is the flash-specific half of
    the ``ddio-flash`` artifact (the service rows never trigger GC because
    the full-size device is heavily overprovisioned at experiment scale).
    """
    import numpy as np

    from repro.disk.flash import FlashTranslationLayer

    logical_pages = int(n_blocks * pages_per_block * 0.9)
    rows = []
    for policy in policies:
        ftl = FlashTranslationLayer(logical_pages, pages_per_block, n_blocks,
                                    gc_policy=policy)
        for lpn in range(logical_pages):
            ftl.write(lpn)
        fill_wa = ftl.write_amplification
        rng = np.random.default_rng(seed)
        for lpn in rng.integers(0, logical_pages, size=n_overwrites):
            ftl.write(int(lpn))
        rows.append({
            "gc_policy": policy,
            "sequential_fill_wa": fill_wa,
            "random_overwrite_wa": ftl.write_amplification,
            "erases": ftl.erases,
            "relocated_pages": ftl.relocated_pages,
            "host_pages_written": ftl.host_pages_written,
        })
    return rows


def service_flash_configs(loads=DEFAULT_LOADS, methods=SERVICE_METHODS,
                          devices=FLASH_DEVICES, **overrides):
    """The ``ddio-flash`` grid: one point per (device, method, load)."""
    configs = []
    for device in devices:
        for load in loads:
            for method in methods:
                configs.append(ServiceExperimentConfig(
                    method=method,
                    arrival_rate=load,
                    device=device,
                    label=f"{device}:{method}@{load:g}",
                    **overrides,
                ))
    return configs


def service_flash_figure(loads=DEFAULT_LOADS, methods=SERVICE_METHODS,
                         devices=FLASH_DEVICES, trials=1, progress=None,
                         workers=None, cache=None, json_path=None,
                         **overrides):
    """Does disk-directed I/O's advantage survive when seeks are free?

    The paper's claim rests on positioning costs: the IOP wins by scheduling
    around them.  This figure re-asks the question on a flash SSD whose
    *sequential* bandwidth exactly matches the HP 97560's (see
    :func:`repro.disk.flash.matched_ssd_spec`) but whose costs are page
    reads/programs — no seeks, no rotation, parallelism inside the device.
    The service workload runs identically on both backends, DDIO vs
    traditional caching at each offered load; the DDIO:TC throughput ratio
    per device is the headline number.

    Byte conservation is asserted for every trial.  When *json_path* is
    given the rows — plus a small deterministic FTL probe reporting GC
    write amplification per policy (:func:`flash_ftl_probe`) — are written
    as the ``docs/data/service_flash.json`` artifact quoted by
    ``docs/flash.md``.  Returns ``(summaries, text)``; extra keyword
    arguments override :class:`ServiceExperimentConfig` fields (tests and
    the CI smoke step shrink the run).
    """
    import json as _json

    from repro.disk.flash import matched_ssd_spec
    from repro.experiments.runner import sweep_parallel
    from repro.machine import MachineConfig

    configs = service_flash_configs(loads=loads, methods=methods,
                                    devices=devices, **overrides)
    summaries = sweep_parallel(configs, trials=trials, progress=progress,
                               workers=workers, cache=cache)
    table_rows = []
    throughput_series = {}
    for summary in summaries:
        config = summary.config
        for result in summary.results:
            if not result.conserves_bytes():
                raise AssertionError(
                    f"byte conservation violated in {config.label}: "
                    f"moved + failed + shed != requested")
        goodput = _mean(result.goodput_mb for result in summary.results)
        entry = {
            "device": config.device,
            "method": config.method,
            "load_req_s": config.arrival_rate,
            "goodput_mb": goodput,
            "p50_s": _mean(result.response_percentile(0.50)
                           for result in summary.results),
            "p99_s": _mean(result.response_percentile(0.99)
                           for result in summary.results),
            "trials": len(summary.results),
        }
        table_rows.append(entry)
        series = f"{config.device}:{config.method}"
        throughput_series.setdefault(series, []).append(
            (config.arrival_rate, goodput))

    # The DDIO advantage per (device, load): the figure's answer.
    ratio_rows = []
    by_cell = {(row["device"], row["method"], row["load_req_s"]):
               row["goodput_mb"] for row in table_rows}
    for device in devices:
        for load in loads:
            ddio = by_cell.get((device, methods[0], load))
            tc = by_cell.get((device, methods[1], load))
            if ddio is None or tc is None:
                continue
            ratio_rows.append({
                "device": device,
                "load_req_s": load,
                "ddio_vs_tc": ddio / tc if tc else float("inf"),
            })

    sample = configs[0]
    disk_spec = MachineConfig().disk_spec
    ssd_spec = matched_ssd_spec(disk_spec)
    text = (
        f"Disk-directed I/O vs traditional caching, disk vs flash at equal "
        f"sequential bandwidth "
        f"({disk_spec.sustained_transfer_rate / MEGABYTE:.2f} Mbytes/s per "
        f"device): {sample.arrival} arrivals, {sample.n_requests} mixed "
        f"collectives over {sample.n_files} files, K={sample.concurrency}, "
        f"{sample.n_cps} CPs / {sample.n_iops} IOPs / {sample.n_disks} "
        f"drives\n\n"
        + format_table(table_rows,
                       columns=["device", "method", "load_req_s",
                                "goodput_mb", "p50_s", "p99_s", "trials"])
        + "\n\nDDIO:TC throughput ratio per device "
          "(does the advantage survive without seeks?)\n"
        + format_table(ratio_rows,
                       columns=["device", "load_req_s", "ddio_vs_tc"])
        + "\n\nGoodput (Mbytes/s) vs offered load (req/s)\n"
        + format_series_table(throughput_series, x_label="load")
    )
    if json_path:
        artifact = {
            "figure": "ddio-flash",
            "regenerate": "PYTHONPATH=src python -m repro.experiments.figures "
                          "ddio-flash --json docs/data/service_flash.json",
            "config": {
                "arrival": sample.arrival,
                "loads": list(loads),
                "devices": list(devices),
                "methods": list(methods),
                "n_requests": sample.n_requests,
                "concurrency": sample.concurrency,
                "file_size": sample.file_size,
                "layout": sample.layout,
                "n_cps": sample.n_cps,
                "n_iops": sample.n_iops,
                "n_disks": sample.n_disks,
                "disk_sequential_mb": round(
                    disk_spec.sustained_transfer_rate / MEGABYTE, 4),
                "ssd_sequential_mb": round(
                    ssd_spec.sequential_read_rate / MEGABYTE, 4),
                "ssd_channels": ssd_spec.channels,
                "ssd_ncq_depth": ssd_spec.ncq_depth,
                "trials": trials,
                "seed": sample.seed,
            },
            "rows": [{key: (round(value, 4)
                            if isinstance(value, float) else value)
                      for key, value in row.items()} for row in table_rows],
            "ratios": [{key: (round(value, 4)
                              if isinstance(value, float) else value)
                        for key, value in row.items()}
                       for row in ratio_rows],
            "ftl_probe": [{key: (round(value, 4)
                                 if isinstance(value, float) else value)
                           for key, value in row.items()}
                          for row in flash_ftl_probe()],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            _json.dump(artifact, handle, indent=2)
            handle.write("\n")
    return summaries, text
