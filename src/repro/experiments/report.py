"""Plain-text reporting: tables and horizontal bar charts for figure output."""


def format_table(rows, columns=None, float_format="{:.2f}"):
    """Render a list of dictionaries as an aligned plain-text table."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = []
    for row in rows:
        rendered.append({
            column: (float_format.format(row[column])
                     if isinstance(row.get(column), float) else str(row.get(column, "")))
            for column in columns
        })
    widths = {column: max(len(column), max(len(row[column]) for row in rendered))
              for column in columns}
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rendered:
        lines.append("  ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def format_bar_chart(entries, width=50, unit="MB/s"):
    """Render ``(label, value)`` pairs as a horizontal ASCII bar chart.

    This mirrors the paper's figures well enough to eyeball who wins and by
    roughly how much.
    """
    if not entries:
        return "(no data)"
    maximum = max(value for _label, value in entries) or 1.0
    label_width = max(len(label) for label, _value in entries)
    lines = []
    for label, value in entries:
        bar = "#" * max(1, int(round(width * value / maximum))) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)}  {value:8.2f} {unit}  {bar}")
    return "\n".join(lines)


def format_series_table(series, x_label="x", value_format="{:6.2f}"):
    """Render ``{series_name: [(x, y), ...]}`` as a grid with one column per series.

    Used for the sensitivity figures (5-8), where the paper plots throughput
    against the number of CPs / IOPs / disks.
    """
    if not series:
        return "(no data)"
    xs = sorted({x for points in series.values() for x, _y in points})
    names = list(series.keys())
    lookup = {name: dict(points) for name, points in series.items()}
    header = [x_label.ljust(8)] \
        + [name.rjust(max(8, len(name)) + 2) for name in names]
    lines = ["".join(header)]
    for x in xs:
        cells = [str(x).ljust(8)]
        for name in names:
            value = lookup[name].get(x)
            cell = value_format.format(value) if value is not None else "   --"
            cells.append(cell.rjust(max(8, len(name)) + 2))
        lines.append("".join(cells))
    return "\n".join(lines)
