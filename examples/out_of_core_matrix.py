#!/usr/bin/env python
"""Out-of-core matrix computation: repeated "memoryloads" against a scratch file.

Section 2 of the paper motivates collective I/O with out-of-core algorithms
that repeatedly load a subset of a huge data set into memory, compute on it,
and write it back (the data set acting as application-controlled virtual
memory).  This example models one sweep of such an algorithm:

* the scratch file holds a large matrix, striped over all disks;
* each iteration reads one slab (BLOCK-distributed over the CPs), "computes"
  for a fixed amount of simulated time, and writes the slab back;
* the whole sweep is timed under traditional caching and disk-directed I/O.

Because the same machine object is reused across iterations, the example also
demonstrates issuing many collective operations back to back on one simulator.
"""

import argparse

from repro import (
    FileSystem,
    Machine,
    MachineConfig,
    make_filesystem,
    make_pattern,
)

MEGABYTE = 2 ** 20


def out_of_core_sweep(method, layout, slab_mb, n_slabs, compute_seconds,
                      record_size=8192, seed=3):
    """Run one full sweep; returns (total simulated seconds, per-slab results).

    Each slab is a *different* region of the out-of-core data set (its own
    striped file), so no slab fits in — or is ever re-found in — the IOP
    caches; that is precisely the "memoryload" access the paper describes as
    defeating traditional caching policies.
    """
    config = MachineConfig()
    machine = Machine(config, seed=seed)
    filesystem = FileSystem(config, layout_seed=seed)
    slab_bytes = int(slab_mb * MEGABYTE)

    read_pattern = make_pattern("rb", slab_bytes, record_size, config.n_cps)
    write_pattern = make_pattern("wb", slab_bytes, record_size, config.n_cps)

    start = machine.now
    per_slab = []
    for slab in range(n_slabs):
        scratch = filesystem.create_file(
            f"scratch-slab-{slab}", slab_bytes, layout=layout,
            layout_seed=seed + slab)
        implementation = make_filesystem(method, machine, scratch)
        read_result = implementation.transfer(read_pattern)
        # The compute phase: all CPs crunch the slab in parallel.
        machine.run(until=machine.now + compute_seconds)
        write_result = implementation.transfer(write_pattern)
        per_slab.append((read_result, write_result))
    total = machine.now - start
    return total, per_slab


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slab-mb", type=float, default=2.0,
                        help="size of one memoryload slab in Mbytes")
    parser.add_argument("--slabs", type=int, default=4,
                        help="number of read/compute/write iterations")
    parser.add_argument("--compute-ms", type=float, default=50.0,
                        help="simulated compute time per slab, in milliseconds")
    parser.add_argument("--layout", default="random",
                        choices=["contiguous", "random"],
                        help="scratch-file layout (scratch files are often "
                             "fragmented, i.e. random)")
    args = parser.parse_args()

    print(f"Out-of-core sweep: {args.slabs} slabs x {args.slab_mb:g} MB, "
          f"{args.compute_ms:g} ms compute per slab, {args.layout} layout\n")

    baseline = None
    for method in ("traditional", "disk-directed"):
        total, per_slab = out_of_core_sweep(
            method, args.layout, args.slab_mb, args.slabs,
            args.compute_ms / 1e3)
        io_time = sum(read.elapsed + write.elapsed for read, write in per_slab)
        print(f"{method:15s}: sweep took {total:7.3f} s simulated "
              f"({io_time:6.3f} s of it in I/O)")
        if baseline is None:
            baseline = total
        else:
            print(f"{'':15s}  -> {baseline / total:.2f}x faster sweep than "
                  f"traditional caching")

    print("\nThe I/O phases dominate the sweep unless the compute phase is "
          "long; disk-directed I/O shrinks exactly that part (Section 2 and "
          "Section 8 of the paper).")


if __name__ == "__main__":
    main()
