#!/usr/bin/env python
"""Service driver: a stream of concurrent collective requests, DDIO vs caching.

Models a parallel file *server*: many striped files open at once, a mixed
read/write stream of collective requests (Poisson arrivals or a closed client
loop), and a job scheduler admitting K collectives concurrently.  Runs the
same stream at several concurrency levels for each method and prints
sustained throughput and response-time percentiles.  Run it with::

    python examples/service_driver.py [--requests 24] [--files 8]
    python examples/service_driver.py --arrival poisson --rate 8 -K 1 -K 4
"""

import argparse

from repro.experiments.config import MEGABYTE
from repro.machine import MachineConfig
from repro.workload import ServiceWorkload, run_service


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=24,
                        help="collective requests in the stream")
    parser.add_argument("--files", type=int, default=12,
                        help="concurrently-open striped files (keep the "
                             "working set beyond the IOP caches, or the "
                             "baseline serves re-reads from memory)")
    parser.add_argument("--file-mb", type=float, default=1.0,
                        help="size of each file in Mbytes")
    parser.add_argument("--arrival", default="closed",
                        choices=["closed", "poisson"],
                        help="arrival process")
    parser.add_argument("--rate", type=float, default=8.0,
                        help="poisson offered load, requests/second")
    parser.add_argument("-K", "--concurrency", type=int, action="append",
                        help="concurrency level(s) to run (repeatable; "
                             "default 1 and 4)")
    parser.add_argument("--read-fraction", type=float, default=0.7,
                        help="fraction of requests that are reads")
    parser.add_argument("--layout", default="random",
                        choices=["contiguous", "random"],
                        help="physical layout of every file")
    parser.add_argument("--size-dist", default="fixed",
                        choices=["fixed", "pareto", "lognormal"],
                        help="per-file size distribution (mean --file-mb; "
                             "heavy-tailed draws are deterministic per "
                             "(seed, file) — docs/workloads.md)")
    parser.add_argument("--size-alpha", type=float, default=1.5,
                        help="Pareto tail index (smaller = heavier)")
    parser.add_argument("--size-sigma", type=float, default=1.0,
                        help="lognormal shape parameter (larger = heavier)")
    parser.add_argument("--record-sizes", type=str, default="",
                        help="comma-separated record-size mix in bytes, e.g. "
                             "'8,8192' to include the paper's 8-byte worst "
                             "case (default: 8192 only)")
    parser.add_argument("--scheduler", default="fcfs",
                        choices=["fcfs", "sstf", "cscan", "shared-fcfs",
                                 "shared-sstf", "shared-cscan"],
                        help="machine-wide disk scheduling: a drive-queue "
                             "policy, or shared-* for the cross-collective "
                             "IOP elevator (docs/scheduling.md)")
    parser.add_argument("--seed", type=int, default=3, help="trial seed")
    args = parser.parse_args()

    config = MachineConfig()   # Table 1 defaults: 16 CPs, 16 IOPs, 16 disks
    concurrency_levels = args.concurrency or [1, 4]
    record_sizes = tuple(int(size) for size in args.record_sizes.split(",")
                         if size) if args.record_sizes else ()

    sizes = f"{args.file_mb:g} MB" if args.size_dist == "fixed" \
        else f"{args.size_dist}(mean {args.file_mb:g} MB)"
    print(f"Machine: {config.n_cps} CPs, {config.n_iops} IOPs, "
          f"{config.n_disks} disks")
    print(f"Stream: {args.requests} mixed collectives "
          f"({args.read_fraction:.0%} reads) over {args.files} x "
          f"{sizes} {args.layout} files, {args.arrival} arrivals, "
          f"disk scheduler {args.scheduler}")
    print()

    for concurrency in concurrency_levels:
        print(f"-- concurrency K={concurrency}")
        for method in ("disk-directed", "traditional"):
            workload = ServiceWorkload(
                n_requests=args.requests,
                arrival=args.arrival,
                arrival_rate=args.rate,
                concurrency=concurrency,
                n_files=args.files,
                file_size=int(args.file_mb * MEGABYTE),
                layout=args.layout,
                read_fraction=args.read_fraction,
                pattern_specs=("b", "c"),
                record_sizes=record_sizes,
                size_distribution=args.size_dist,
                size_alpha=args.size_alpha,
                size_sigma=args.size_sigma,
                file_assignment="round-robin",
                seed=args.seed,
            )
            result = run_service(method, workload, machine_config=config,
                                 disk_scheduler=args.scheduler)
            conserved = "ok" if result.conserves_bytes() else "VIOLATED"
            print(f"  {result.summary()}  conservation={conserved}")
        print()


if __name__ == "__main__":
    main()
