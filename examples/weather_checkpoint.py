#!/usr/bin/env python
"""Checkpointing a data-parallel weather model: 2-D BLOCK x BLOCK writes.

The paper's introduction names weather forecasting as a motivating
application: a large 2-D grid distributed BLOCK x BLOCK over the compute
processors must periodically be written to disk (a checkpoint), and later read
back (a restart).  The grid's distribution does not match the file's row-major
layout, so every checkpoint is a strided collective write — the ``wbb``
pattern — and every restart is the matching ``rbb`` read.

The example measures checkpoint and restart time for traditional caching and
disk-directed I/O on both disk layouts, with the paper's two record sizes.
"""

import argparse

from repro import (
    FileSystem,
    Machine,
    MachineConfig,
    make_filesystem,
    make_pattern,
)

MEGABYTE = 2 ** 20


def checkpoint_and_restart(method, layout, grid_mb, record_size, seed=7):
    """One checkpoint (wbb) followed by one restart (rbb); returns both results.

    The restart runs on a freshly built machine: a restart follows a crash, so
    nothing of the checkpoint is still sitting in any IOP cache.
    """
    grid_bytes = int(grid_mb * MEGABYTE)
    results = []
    for pattern_name in ("wbb", "rbb"):
        config = MachineConfig()
        machine = Machine(config, seed=seed)
        filesystem = FileSystem(config, layout_seed=seed)
        checkpoint_file = filesystem.create_file(
            "checkpoint", grid_bytes, layout=layout)
        implementation = make_filesystem(method, machine, checkpoint_file)
        pattern = make_pattern(pattern_name, grid_bytes, record_size, config.n_cps)
        results.append(implementation.transfer(pattern))
    return results[0], results[1]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid-mb", type=float, default=2.0,
                        help="size of the model grid in Mbytes")
    parser.add_argument("--record-size", type=int, default=8192,
                        help="bytes per grid record (8 stresses small pieces)")
    args = parser.parse_args()

    print(f"Weather-model checkpoint: {args.grid_mb:g} MB grid, BLOCKxBLOCK "
          f"over 16 CPs, {args.record_size}-byte records\n")
    header = (f"{'layout':12s} {'method':15s} {'checkpoint':>12s} "
              f"{'restart':>12s}")
    print(header)
    print("-" * len(header))
    for layout in ("contiguous", "random"):
        for method in ("traditional", "disk-directed"):
            checkpoint, restart = checkpoint_and_restart(
                method, layout, args.grid_mb, args.record_size)
            print(f"{layout:12s} {method:15s} "
                  f"{checkpoint.throughput_mb:9.2f} MB/s "
                  f"{restart.throughput_mb:9.2f} MB/s")

    print("\nA checkpoint that does not fit the file layout is exactly the "
          "situation where disk-directed I/O's independence from the data "
          "distribution pays off (Figures 3 and 4).")


if __name__ == "__main__":
    main()
