#!/usr/bin/env python
"""Sensitivity sweep: how throughput scales with CPs, IOPs and disks.

A compact version of the paper's Figures 5-8: for a chosen machine dimension
(CPs, IOPs or disks) the script sweeps the value, runs disk-directed I/O and
traditional caching for a handful of patterns, and prints the resulting series
as a table.  Useful both as an example of the experiment API and as a quick
capacity-planning ("how many disks per bus are worth it?") tool.
"""

import argparse

from repro.experiments import figure5, figure6, figure7, figure8

SWEEPS = {
    "cps": figure5,
    "iops": figure6,
    "disks-contiguous": figure7,
    "disks-random": figure8,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dimension", choices=sorted(SWEEPS),
                        help="which machine dimension to sweep")
    parser.add_argument("--file-mb", type=float, default=1.0,
                        help="file size in Mbytes per data point")
    parser.add_argument("--trials", type=int, default=1,
                        help="trials per data point")
    parser.add_argument("--workers", type=int, default=None,
                        help="fan data points out over N processes")
    parser.add_argument("--cache", type=str, default=None, metavar="DIR",
                        help="reuse cached trial results from DIR")
    args = parser.parse_args()

    generator = SWEEPS[args.dimension]
    _summaries, text = generator(file_mb=args.file_mb, trials=args.trials,
                                 workers=args.workers, cache=args.cache)
    print(text)
    print("\nCompare with the corresponding figure in the paper: disk-directed "
          "I/O tracks the hardware limit (disks or bus), while traditional "
          "caching falls away whenever the pattern defeats its cache.")


if __name__ == "__main__":
    main()
