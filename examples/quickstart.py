#!/usr/bin/env python
"""Quickstart: load a distributed matrix with disk-directed I/O vs traditional caching.

Builds the paper's default machine (Table 1), creates a striped file, and
performs one collective read of a BLOCK-distributed matrix (pattern ``rb``)
with each of the three collective-I/O implementations, printing the achieved
throughput.  Run it with::

    python examples/quickstart.py [--file-mb 4] [--layout contiguous|random]
"""

import argparse

from repro import (
    FileSystem,
    Machine,
    MachineConfig,
    make_filesystem,
    make_pattern,
)

MEGABYTE = 2 ** 20


def run_one(method, config, layout, file_size, pattern_name, record_size, seed=1):
    """Run one collective transfer and return its TransferResult."""
    machine = Machine(config, seed=seed)
    filesystem = FileSystem(config, layout_seed=seed)
    big_file = filesystem.create_file("matrix", file_size, layout=layout)
    pattern = make_pattern(pattern_name, file_size, record_size, config.n_cps)
    implementation = make_filesystem(method, machine, big_file)
    return implementation.transfer(pattern)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file-mb", type=float, default=4.0,
                        help="file size in Mbytes (paper: 10)")
    parser.add_argument("--layout", default="contiguous",
                        choices=["contiguous", "random"],
                        help="physical disk layout")
    parser.add_argument("--pattern", default="rb", help="access pattern name")
    parser.add_argument("--record-size", type=int, default=8192,
                        help="record size in bytes (paper: 8 or 8192)")
    args = parser.parse_args()

    config = MachineConfig()   # Table 1 defaults: 16 CPs, 16 IOPs, 16 disks
    file_size = int(args.file_mb * MEGABYTE)

    print(f"Machine: {config.n_cps} CPs, {config.n_iops} IOPs, "
          f"{config.n_disks} x {config.disk_spec.name}")
    print(f"Peak disk bandwidth: "
          f"{config.peak_disk_bandwidth / MEGABYTE:.1f} Mbytes/s")
    print(f"Workload: pattern {args.pattern}, {args.record_size}-byte records, "
          f"{args.file_mb:g} MB file, {args.layout} layout\n")

    for method in ("traditional", "ddio-nosort", "disk-directed"):
        result = run_one(method, config, args.layout, file_size,
                         args.pattern, args.record_size)
        print(f"  {result.method:22s} {result.throughput_mb:7.2f} Mbytes/s  "
              f"({result.elapsed * 1e3:8.1f} ms simulated)")

    print("\nDisk-directed I/O should be at least as fast as traditional "
          "caching, and much faster when chunks are small or the layout is "
          "random (compare with Figures 3 and 4 of the paper).")


if __name__ == "__main__":
    main()
